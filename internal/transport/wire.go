// Package transport moves LDP reports across a real network boundary: a
// compact length-prefixed binary wire format (encoding/binary) and a TCP
// collector server with a matching client. It exists so the protocol is
// exercised end to end — user-side perturbation, serialization, a socket,
// and collector-side aggregation — not just in-process.
//
// Wire format (big endian). Every frame starts with a one-byte type:
//
//	0x01 REPORT    uint32 count, then count × (uint32 dim, float64 value)
//	0x02 ESTIMATE  (no payload) — server replies uint32 d, then d × float64
//	0x03 COUNTS    (no payload) — server replies uint32 d, then d × int64
//	0x04 ENHANCED  (no payload) — server replies a status byte; on 0x00 it
//	     follows with uint32 d, then d × float64 (the HDR4ME-re-calibrated
//	     estimate), on 0xFF the estimator does not support enhancement
//	0x05 VECREPORT uint32 ndims, ndims × uint32 dim, uint32 nvals,
//	     nvals × float64 — a report whose dim and value lists have
//	     independent lengths (whole-tuple and frequency families)
//	0x06 BATCH     uint32 count, then count × one embedded report frame
//	     (each a full 0x01 or 0x05 frame, type byte included) — server
//	     replies a status byte then uint32 accepted-count; reports the
//	     estimator rejects are skipped, not fatal
//	0x07 SNAPSHOT  (no payload) — server replies a status byte; on 0x00 it
//	     follows with the serialized est.Snapshot of its estimator
//	0x08 MERGE     a serialized est.Snapshot — the server folds it into
//	     its estimator and replies a single status byte
//	0x09 OPENQUERY a serialized est.QuerySpec — the server registers a new
//	     named query (admission-checked against the privacy budget) and
//	     replies a status byte; on 0xFF a length-prefixed error string
//	     follows
//	0x0A SELECT    uint32 name length + name bytes — a route header, not a
//	     standalone exchange: it prefixes exactly one frame of types
//	     0x01–0x08, and that frame's exchange executes against the named
//	     query instead of the default one
//	0x0B CHECKPOINT (no payload) — the server invokes its checkpoint hook
//	     (durably persisting the full collector state, see internal/persist)
//	     and replies a status byte; on 0xFF a length-prefixed error string
//	     follows. Not routable: a checkpoint spans every query.
//	0x0C EPOCH     uint64 epoch id, then one embedded ingest frame (0x01,
//	     0x05 or 0x06, type byte included) — the embedded reports are
//	     accumulated into the named epoch instead of the live one, subject
//	     to the serving ring's lateness policy. Composes after SELECT /
//	     SELECTGEN; the reply mirrors the wrapped frame's (ack byte for a
//	     report, status + uint32 accepted for a batch). Requires an
//	     epoch-enabled (continual) query.
//	0x0D WINDOW    uint32 w — server replies a status byte; on 0x00 it
//	     follows with uint32 d, then d × float64: the estimate over the
//	     last w epochs (live epoch included)
//	0x0E DECAY     float64 gamma — server replies a status byte; on 0x00
//	     it follows with uint32 d, then d × float64: the exponentially
//	     decayed estimate (epoch k back weighted gamma^k)
//	0x0F ROTATE    (no payload) — the server rotates the serving ring
//	     (freezing the live epoch) and replies a status byte; on 0x00 a
//	     uint64 follows: the id of the new live epoch
//	0x10 SELECTGEN uint32 name length + name bytes + uint64 generation — a
//	     route header like SELECT, but pinned to one registration
//	     generation: if the named query has since been deleted and
//	     reopened (a different generation), the route resolves to no query
//	     and the inner frame is rejected instead of silently landing in
//	     the successor's estimator
//	0x11 QUERYINFO uint32 name length + name bytes — the server replies a
//	     status byte; on 0x00 it follows with uint64 generation, one byte
//	     lifecycle state, one byte epoch-mode flag, and uint64 live epoch
//	     id (zero when epoch mode is off). Not routable.
//	0x12 HELLO     uint64 session token (0 opens a new session) — the
//	     server replies a status byte; on 0x00 it follows with uint64
//	     token, uint64 last applied batch sequence number, and uint64
//	     total reports accepted for the session; on 0xFE the collector is
//	     shedding load (back off and retry); on 0xFF a length-prefixed
//	     error string follows (unknown or expired token). After a
//	     successful HELLO, every top-level BATCH frame on the connection
//	     carries a uint64 sequence number between the type byte and the
//	     report count, and the server applies each (token, seq) at most
//	     once — the exactly-once replay contract reconnecting clients
//	     rely on. Not routable. A client may also set flag bits in the
//	     token field to negotiate a protocol version (see cbatch.go);
//	     the acknowledged reply then grows a trailing version byte.
//	0x13 CBATCH    the protocol-v2 columnar batch frame: in-frame route,
//	     uint64 sequence number, a rectangular (n × ndims × nvals)
//	     shape, delta-varint RLE dimension columns and one contiguous
//	     little-endian float64 value run. Full grammar in cbatch.go.
//	     Replied to exactly like BATCH. Not routable by SELECT (the
//	     route is in-frame) and not embeddable in EPOCH.
//
// A report frame (0x01 or 0x05) is acknowledged with a single 0x00 byte
// (ok) or 0xFF (rejected). Frames are small, so no additional length prefix
// is needed beyond the counts. How a report's dims/values are interpreted
// is up to the serving estimator family (see est.Report); the classic pair
// frame 0x01 remains the compact encoding for the mean family where the
// two lists pair up.
//
// Overload shedding. A third status byte, 0xFE (retryable NACK), means
// the collector refused the exchange for capacity — admission gates on
// connection count and in-flight batch reports — without failing it: the
// frame body was consumed, the connection (when one was granted) stays in
// sync, and the client may retry the identical exchange after backing
// off. 0xFE replaces the whole 5-byte batch reply (no accepted count
// follows), and an over-limit accept is answered with a single 0xFE byte
// before the connection closes. Sequence numbers make the retry safe:
// a shed sequenced batch never advances the session's applied sequence,
// so replaying it cannot double-count.
//
// Routing (the multi-query service). A collector hosts an est.Registry of
// named queries; un-routed frames resolve to the query named
// est.DefaultName, so legacy single-tenant clients keep working
// unchanged. A SELECT-prefixed ESTIMATE or COUNTS exchange gains a
// leading status byte before its vector reply (the un-routed forms have
// nowhere to report an unknown query name; the routed forms do). All
// other routed exchanges keep their legacy reply shapes — a routing
// failure surfaces as the frame's ordinary rejection status, after the
// server has consumed the frame body, so the connection stays usable.
//
// A serialized est.Snapshot is: uint32 kind length, kind bytes, uint32
// dims, then the Cards, Sums and Counts vectors each as uint32 length +
// elements (uint32 cards, float64 sums, int64 counts). SNAPSHOT and MERGE
// make shard collectors composable over the wire: a leaf collector
// aggregates its region's reports, ships one snapshot upstream, and the
// parent folds it in associatively — no report replay, no raw data.
//
// Both sides of a connection are buffered (bufio); the server flushes
// after every reply, clients flush before every read of a reply. BATCH
// amortizes the per-report syscall and ack round-trip that bound
// per-report Send throughput.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"sync"

	"github.com/hdr4me/hdr4me/internal/est"
)

// Frame type bytes.
const (
	frameReport     = 0x01
	frameEstimate   = 0x02
	frameCounts     = 0x03
	frameEnhanced   = 0x04
	frameVecReport  = 0x05
	frameBatch      = 0x06
	frameSnapshot   = 0x07
	frameMerge      = 0x08
	frameOpenQuery  = 0x09
	frameSelect     = 0x0A
	frameCheckpoint = 0x0B
	frameEpoch      = 0x0C
	frameWindow     = 0x0D
	frameDecay      = 0x0E
	frameRotate     = 0x0F
	frameSelectGen  = 0x10
	frameQueryInfo  = 0x11
	frameHello      = 0x12
	frameCBatch     = 0x13

	ackOK = 0x00
	// ackRetry is the retryable NACK: the collector shed the exchange for
	// capacity (admission gate, batch ordering gap) and the client may
	// repeat it verbatim after backing off. It deliberately sits far from
	// the frame-type range so a desynced stream cannot alias it.
	ackRetry = 0xFE
	ackErr   = 0xFF
)

// maxNameLen caps query names and other short strings on the wire.
const maxNameLen = 128

// maxErrLen caps the error string an OPENQUERY rejection carries.
const maxErrLen = 1 << 10

// maxPairs caps a report frame to guard the server against hostile or
// corrupt length fields.
const maxPairs = 1 << 20

// maxBatch caps the report count of one BATCH frame; larger batches gain
// nothing (the syscall is already amortized) and a hostile count must not
// pin a connection goroutine for unbounded work.
const maxBatch = 1 << 16

// maxKindLen caps the estimator-kind string of a serialized snapshot.
const maxKindLen = 64

// encPool recycles marshal buffers across WriteReport/WriteVecReport/
// WriteBatch calls, so the steady-state encode path allocates nothing.
var encPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// maxEncRetain caps the capacity of a buffer returned to the pool: a
// one-off giant batch must not pin its marshal buffer forever.
const maxEncRetain = 1 << 20

func putEncBuf(bp *[]byte) {
	if cap(*bp) > maxEncRetain {
		return
	}
	*bp = (*bp)[:0]
	encPool.Put(bp)
}

// appendReport marshals one pair-shaped report frame (0x01) onto buf.
func appendReport(buf []byte, rep est.Report) []byte {
	buf = append(buf, frameReport)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rep.Dims)))
	for i, d := range rep.Dims {
		buf = binary.BigEndian.AppendUint32(buf, d)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(rep.Values[i]))
	}
	return buf
}

// appendVecReport marshals one vector report frame (0x05) onto buf.
func appendVecReport(buf []byte, rep est.Report) []byte {
	buf = append(buf, frameVecReport)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rep.Dims)))
	for _, d := range rep.Dims {
		buf = binary.BigEndian.AppendUint32(buf, d)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rep.Values)))
	for _, v := range rep.Values {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// WriteReport serializes one pair-shaped report frame (0x01) to w through
// a pooled marshal buffer. Reports whose dim and value lists differ in
// length must use WriteVecReport.
func WriteReport(w io.Writer, rep est.Report) error {
	if len(rep.Dims) != len(rep.Values) {
		return fmt.Errorf("transport: report dims/values length mismatch")
	}
	bp := encPool.Get().(*[]byte)
	*bp = appendReport((*bp)[:0], rep)
	_, err := w.Write(*bp)
	putEncBuf(bp)
	return err
}

// ReadFrame reads the next frame type byte from r.
func readFrameType(r io.Reader) (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// readReportBody reads the payload of a pair-shaped report frame.
func readReportBody(r io.Reader) (est.Report, error) {
	var cnt uint32
	if err := binary.Read(r, binary.BigEndian, &cnt); err != nil {
		return est.Report{}, err
	}
	if cnt > maxPairs {
		return est.Report{}, fmt.Errorf("transport: report with %d pairs exceeds limit", cnt)
	}
	rep := est.Report{Dims: make([]uint32, cnt), Values: make([]float64, cnt)}
	buf := make([]byte, 12*cnt)
	if _, err := io.ReadFull(r, buf); err != nil {
		return est.Report{}, err
	}
	for i := uint32(0); i < cnt; i++ {
		off := 12 * i
		rep.Dims[i] = binary.BigEndian.Uint32(buf[off:])
		rep.Values[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[off+4:]))
	}
	return rep, nil
}

// WriteVecReport serializes one vector report frame (0x05): dims and
// values as independently sized lists, through a pooled marshal buffer.
func WriteVecReport(w io.Writer, rep est.Report) error {
	bp := encPool.Get().(*[]byte)
	*bp = appendVecReport((*bp)[:0], rep)
	_, err := w.Write(*bp)
	putEncBuf(bp)
	return err
}

// readVecReportBody reads the payload of a vector report frame.
func readVecReportBody(r io.Reader) (est.Report, error) {
	var nd uint32
	if err := binary.Read(r, binary.BigEndian, &nd); err != nil {
		return est.Report{}, err
	}
	if nd > maxPairs {
		return est.Report{}, fmt.Errorf("transport: report with %d dims exceeds limit", nd)
	}
	rep := est.Report{Dims: make([]uint32, nd)}
	dbuf := make([]byte, 4*nd)
	if _, err := io.ReadFull(r, dbuf); err != nil {
		return est.Report{}, err
	}
	for i := range rep.Dims {
		rep.Dims[i] = binary.BigEndian.Uint32(dbuf[4*i:])
	}
	var nv uint32
	if err := binary.Read(r, binary.BigEndian, &nv); err != nil {
		return est.Report{}, err
	}
	if nv > maxPairs {
		return est.Report{}, fmt.Errorf("transport: report with %d values exceeds limit", nv)
	}
	rep.Values = make([]float64, nv)
	vbuf := make([]byte, 8*nv)
	if _, err := io.ReadFull(r, vbuf); err != nil {
		return est.Report{}, err
	}
	for i := range rep.Values {
		rep.Values[i] = math.Float64frombits(binary.BigEndian.Uint64(vbuf[8*i:]))
	}
	return rep, nil
}

// WriteBatch serializes one un-routed, un-sequenced batch frame (0x06)
// through a pooled marshal buffer and a single Write.
//
// Deprecated: batch marshaling is versioned now — use the FrameCodec
// surface (CodecV1{}.AppendBatch, or CodecFor on the connection's
// negotiated version) so callers compose with routing, sequencing and
// the v2 columnar frame. WriteBatch remains as a thin wrapper over
// CodecV1 and keeps its exact wire bytes.
func WriteBatch(w io.Writer, reps []est.Report) error {
	bp := encPool.Get().(*[]byte)
	buf, err := CodecV1{}.AppendBatch((*bp)[:0], "", 0, reps)
	if err != nil {
		putEncBuf(bp)
		return err
	}
	*bp = buf
	_, err = w.Write(buf)
	putEncBuf(bp)
	return err
}

// WriteSeqBatch serializes one sequenced batch frame: the 0x06 type byte,
// the session-relative uint64 sequence number, then the report count and
// embedded frames exactly as WriteBatch. Only valid on a connection that
// completed a HELLO exchange — the sequence field exists only in that
// grammar, and the server dedupes on it.
//
// Deprecated: use the FrameCodec surface, which marshals the sequence
// field whenever seq is non-zero (sessions number batches from 1, so 0
// never names a real sequence). WriteSeqBatch keeps its historical
// behavior of writing the field even for seq 0.
func WriteSeqBatch(w io.Writer, seq uint64, reps []est.Report) error {
	if len(reps) > maxBatch {
		return fmt.Errorf("transport: batch of %d reports exceeds limit %d", len(reps), maxBatch)
	}
	bp := encPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, frameBatch)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(reps)))
	for _, rep := range reps {
		if len(rep.Dims) == len(rep.Values) {
			buf = appendReport(buf, rep)
		} else {
			buf = appendVecReport(buf, rep)
		}
	}
	*bp = buf
	_, err := w.Write(buf)
	putEncBuf(bp)
	return err
}

// writeHello writes one HELLO frame (0x12): token 0 asks the collector to
// open a new replay session, a prior token asks to resume it.
func writeHello(w io.Writer, token uint64) error {
	var buf [9]byte
	buf[0] = frameHello
	binary.BigEndian.PutUint64(buf[1:], token)
	_, err := w.Write(buf[:])
	return err
}

// helloReply is the session state an acknowledged HELLO carries back:
// the (possibly newly minted) token, the last batch sequence number the
// collector durably applied, and the cumulative reports it accepted for
// the session. LastSeq tells a reconnecting client which pending batches
// to drop before replaying; Accepted reconciles its accounting for acks
// the old connection lost.
type helloReply struct {
	Token    uint64
	LastSeq  uint64
	Accepted uint64
}

// writeHelloReplyBody writes the 24-byte body that follows an ackOK HELLO
// status.
func writeHelloReplyBody(w io.Writer, h helloReply) error {
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:], h.Token)
	binary.BigEndian.PutUint64(buf[8:], h.LastSeq)
	binary.BigEndian.PutUint64(buf[16:], h.Accepted)
	_, err := w.Write(buf[:])
	return err
}

// readHelloReplyBody reads the body written by writeHelloReplyBody.
func readHelloReplyBody(r io.Reader) (helloReply, error) {
	var buf [24]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return helloReply{}, err
	}
	return helloReply{
		Token:    binary.BigEndian.Uint64(buf[0:]),
		LastSeq:  binary.BigEndian.Uint64(buf[8:]),
		Accepted: binary.BigEndian.Uint64(buf[16:]),
	}, nil
}

// maxSeqBatchValues caps the dim/value payload a sequenced batch may
// carry. Unlike the streaming path, sequenced batches are fully decoded
// before application (so a connection dying mid-batch can never leave a
// partially applied batch behind the exactly-once contract), which means
// the whole batch is resident at once and needs a hard bound.
const maxSeqBatchValues = 1 << 22

// readBatchAll decodes cnt embedded report frames into sc in full — no
// chunked hand-off — and returns the decoded reports. It is the decode
// half of the sequenced-batch path: the caller applies the whole slice
// atomically after a successful decode, so a wire error mid-batch
// ingests nothing (contrast readBatchInto, which accumulates the clean
// prefix). Reports alias sc's arenas and are valid until the next reset.
func readBatchAll(br *bufio.Reader, sc *decodeScratch, cnt uint32) ([]est.Report, error) {
	sc.reset()
	for done := uint32(0); done < cnt; done++ {
		rep, err := decodeEmbeddedPeek(br, sc)
		if err != nil {
			return nil, err
		}
		if len(sc.vals) > maxSeqBatchValues || len(sc.dims) > maxSeqBatchValues {
			return nil, fmt.Errorf("transport: sequenced batch payload exceeds %d values", maxSeqBatchValues)
		}
		sc.reps = append(sc.reps, rep)
	}
	return sc.reps, nil
}

// discardBatchReports consumes cnt embedded report frames without
// decoding them — the shed path's body drain: a NACKed batch must still
// be read off the wire or the connection desyncs.
func discardBatchReports(br *bufio.Reader, sc *decodeScratch, cnt uint32) error {
	for i := uint32(0); i < cnt; i++ {
		ft, err := sc.readFrameType(br)
		if err != nil {
			return err
		}
		switch ft {
		case frameReport:
			n, err := sc.readUint32(br)
			if err != nil {
				return err
			}
			if n > maxPairs {
				return fmt.Errorf("transport: report with %d pairs exceeds limit", n)
			}
			if _, err := br.Discard(12 * int(n)); err != nil {
				return err
			}
		case frameVecReport:
			nd, err := sc.readUint32(br)
			if err != nil {
				return err
			}
			if nd > maxPairs {
				return fmt.Errorf("transport: report with %d dims exceeds limit", nd)
			}
			if _, err := br.Discard(4 * int(nd)); err != nil {
				return err
			}
			nv, err := sc.readUint32(br)
			if err != nil {
				return err
			}
			if nv > maxPairs {
				return fmt.Errorf("transport: report with %d values exceeds limit", nv)
			}
			if _, err := br.Discard(8 * int(nv)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("transport: batch embeds frame type 0x%02x", ft)
		}
	}
	return nil
}

// readBatchBody streams the embedded reports of a batch frame to fn,
// one at a time, so the server never holds a whole hostile batch in
// memory. fn's error marks that report rejected (counted, not fatal);
// a malformed embedded frame aborts with an error. It returns how many
// reports fn accepted.
//
// This is the PR 3 ingest baseline — it allocates three slices per
// report and drives the estimator one report at a time. The serving path
// uses readBatchInto (pooled scratch, chunked batch accumulation);
// readBatchBody is kept for Server.LegacyIngest A/B benchmarking and as
// the differential-fuzz reference decoder.
func readBatchBody(r io.Reader, fn func(est.Report) error) (accepted uint32, err error) {
	var cnt uint32
	if err := binary.Read(r, binary.BigEndian, &cnt); err != nil {
		return 0, err
	}
	if cnt > maxBatch {
		return 0, fmt.Errorf("transport: batch of %d reports exceeds limit %d", cnt, maxBatch)
	}
	return readBatchReports(r, cnt, fn)
}

// readBatchReports is readBatchBody with the count already consumed and
// validated — the serving path reads the count itself so the admission
// gate can shed a batch before any report is decoded.
func readBatchReports(r io.Reader, cnt uint32, fn func(est.Report) error) (accepted uint32, err error) {
	for i := uint32(0); i < cnt; i++ {
		ft, err := readFrameType(r)
		if err != nil {
			return accepted, err
		}
		var rep est.Report
		switch ft {
		case frameReport:
			rep, err = readReportBody(r)
		case frameVecReport:
			rep, err = readVecReportBody(r)
		default:
			return accepted, fmt.Errorf("transport: batch embeds frame type 0x%02x", ft)
		}
		if err != nil {
			return accepted, err
		}
		if fn(rep) == nil {
			accepted++
		}
	}
	return accepted, nil
}

// Batch chunking bounds for the pooled decode path: one scratch fill and
// one estimator AddReports (one stripe-lock acquisition) per chunk. The
// caps bound how much of a hostile batch is ever resident, preserving
// readBatchBody's never-hold-a-whole-batch property while still
// amortizing the lock ~10³× .
const (
	batchChunkReports = 1024
	batchChunkValues  = 1 << 16
)

// decodeScratch is a per-connection reusable decode arena: frame bytes,
// dim/value backing arrays and the report headers sliced out of them.
// Reports decoded into a scratch alias its arrays and are only valid
// until the next reset — sinks must consume them synchronously (every
// estimator copies values into its accumulator lanes, so handing scratch
// reports to AddReports is safe). After warm-up the arrays reach their
// high-water size and the decode loop allocates nothing.
type decodeScratch struct {
	n    [8]byte
	b    []byte
	dims []uint32
	vals []float64
	reps []est.Report
}

// Scratch retention caps — the decode-side analogue of maxEncRetain:
// reset keeps arenas sized for the chunked batch loop but drops outliers
// grown by one oversized (protocol-legal, up to maxPairs) report, so a
// connection cannot pin tens of megabytes for its lifetime off a single
// giant frame.
const (
	maxRetainBytes = 1 << 20 // raw frame arena
	maxRetainLanes = 1 << 18 // dim/value arenas (entries)
)

func (sc *decodeScratch) reset() {
	if cap(sc.b) > maxRetainBytes {
		sc.b = nil
	}
	if cap(sc.dims) > maxRetainLanes {
		sc.dims = nil
	}
	if cap(sc.vals) > maxRetainLanes {
		sc.vals = nil
	}
	sc.dims = sc.dims[:0]
	sc.vals = sc.vals[:0]
	sc.reps = sc.reps[:0]
}

// readUint32 reads one big-endian uint32 without the reflection
// allocation of binary.Read.
func (sc *decodeScratch) readUint32(r io.Reader) (uint32, error) {
	if _, err := io.ReadFull(r, sc.n[:4]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(sc.n[:4]), nil
}

// readFrameType reads the next frame type byte through the scratch
// arena; the package-level readFrameType's stack buffer escapes into the
// io.Reader and costs one allocation per embedded frame.
func (sc *decodeScratch) readFrameType(r io.Reader) (byte, error) {
	if _, err := io.ReadFull(r, sc.n[:1]); err != nil {
		return 0, err
	}
	return sc.n[0], nil
}

// bytes returns an n-byte raw buffer, reusing the scratch's arena.
func (sc *decodeScratch) bytes(n int) []byte {
	if cap(sc.b) < n {
		sc.b = make([]byte, n)
	}
	return sc.b[:n]
}

// growDims extends the dim arena by n and returns the new tail. A
// reallocation leaves earlier reports aliasing the old array — still
// valid, just no longer shared.
func (sc *decodeScratch) growDims(n int) []uint32 {
	off := len(sc.dims)
	sc.dims = slices.Grow(sc.dims, n)[:off+n]
	return sc.dims[off:]
}

func (sc *decodeScratch) growVals(n int) []float64 {
	off := len(sc.vals)
	sc.vals = slices.Grow(sc.vals, n)[:off+n]
	return sc.vals[off:]
}

// decodePairs decodes cnt (dim, value) pairs from raw into the scratch
// arena and returns the report viewing them.
func (sc *decodeScratch) decodePairs(raw []byte, cnt int) est.Report {
	dims, vals := sc.growDims(cnt), sc.growVals(cnt)
	for i := 0; i < cnt; i++ {
		p := raw[12*i : 12*i+12 : 12*i+12] // full-slice hints bounds-check elimination
		dims[i] = binary.BigEndian.Uint32(p)
		vals[i] = math.Float64frombits(binary.BigEndian.Uint64(p[4:]))
	}
	return est.Report{Dims: dims, Values: vals}
}

// readReportBodyInto decodes a pair-shaped report frame body into the
// scratch arena — the allocation-free sibling of readReportBody.
func readReportBodyInto(r io.Reader, sc *decodeScratch) (est.Report, error) {
	cnt, err := sc.readUint32(r)
	if err != nil {
		return est.Report{}, err
	}
	return readReportPairs(r, sc, cnt)
}

// readReportPairs reads the cnt pairs of a 0x01 frame whose count field
// is already consumed.
func readReportPairs(r io.Reader, sc *decodeScratch, cnt uint32) (est.Report, error) {
	if cnt > maxPairs {
		return est.Report{}, fmt.Errorf("transport: report with %d pairs exceeds limit", cnt)
	}
	buf := sc.bytes(12 * int(cnt))
	if _, err := io.ReadFull(r, buf); err != nil {
		return est.Report{}, err
	}
	return sc.decodePairs(buf, int(cnt)), nil
}

// readVecReportBodyInto decodes a vector report frame body into the
// scratch arena — the allocation-free sibling of readVecReportBody.
func readVecReportBodyInto(r io.Reader, sc *decodeScratch) (est.Report, error) {
	nd, err := sc.readUint32(r)
	if err != nil {
		return est.Report{}, err
	}
	return readVecReportRest(r, sc, nd)
}

// readVecReportRest reads a 0x05 frame whose dim-count field is already
// consumed.
func readVecReportRest(r io.Reader, sc *decodeScratch, nd uint32) (est.Report, error) {
	if nd > maxPairs {
		return est.Report{}, fmt.Errorf("transport: report with %d dims exceeds limit", nd)
	}
	dbuf := sc.bytes(4 * int(nd))
	if _, err := io.ReadFull(r, dbuf); err != nil {
		return est.Report{}, err
	}
	dims := sc.growDims(int(nd))
	for i := range dims {
		dims[i] = binary.BigEndian.Uint32(dbuf[4*i:])
	}
	nv, err := sc.readUint32(r)
	if err != nil {
		return est.Report{}, err
	}
	if nv > maxPairs {
		return est.Report{}, fmt.Errorf("transport: report with %d values exceeds limit", nv)
	}
	vbuf := sc.bytes(8 * int(nv))
	if _, err := io.ReadFull(r, vbuf); err != nil {
		return est.Report{}, err
	}
	vals := sc.growVals(int(nv))
	for i := range vals {
		vals[i] = math.Float64frombits(binary.BigEndian.Uint64(vbuf[8*i:]))
	}
	return est.Report{Dims: dims, Values: vals}, nil
}

// parseEmbedded decodes one embedded report frame from the byte window w
// without consuming anything: it returns the report plus how many bytes
// it spans, n == 0 when the frame is incomplete in w (read more first),
// or an error for an undecodable frame. Dim/value payloads are copied
// into the scratch arenas, so the report stays valid after w is
// discarded.
func (sc *decodeScratch) parseEmbedded(w []byte) (rep est.Report, n int, err error) {
	if len(w) < 5 {
		return est.Report{}, 0, nil
	}
	switch w[0] {
	case frameReport:
		cnt := binary.BigEndian.Uint32(w[1:])
		if cnt > maxPairs {
			return est.Report{}, 0, fmt.Errorf("transport: report with %d pairs exceeds limit", cnt)
		}
		need := 5 + 12*int(cnt)
		if len(w) < need {
			return est.Report{}, 0, nil
		}
		return sc.decodePairs(w[5:need], int(cnt)), need, nil
	case frameVecReport:
		nd := binary.BigEndian.Uint32(w[1:])
		if nd > maxPairs {
			return est.Report{}, 0, fmt.Errorf("transport: report with %d dims exceeds limit", nd)
		}
		dimsEnd := 5 + 4*int(nd)
		if len(w) < dimsEnd+4 {
			return est.Report{}, 0, nil
		}
		nv := binary.BigEndian.Uint32(w[dimsEnd:])
		if nv > maxPairs {
			return est.Report{}, 0, fmt.Errorf("transport: report with %d values exceeds limit", nv)
		}
		need := dimsEnd + 4 + 8*int(nv)
		if len(w) < need {
			return est.Report{}, 0, nil
		}
		dims := sc.growDims(int(nd))
		for i := range dims {
			dims[i] = binary.BigEndian.Uint32(w[5+4*i:])
		}
		vals := sc.growVals(int(nv))
		for i := range vals {
			vals[i] = math.Float64frombits(binary.BigEndian.Uint64(w[dimsEnd+4+8*i:]))
		}
		return est.Report{Dims: dims, Values: vals}, need, nil
	default:
		return est.Report{}, 0, fmt.Errorf("transport: batch embeds frame type 0x%02x", w[0])
	}
}

// decodeEmbeddedPeek decodes one embedded report frame straight out of
// the bufio window — no per-field ReadFull calls, no copy into the byte
// arena — falling back to the streaming readers only when a frame
// overflows the buffer. readBatchBuffered uses it as the blocking path
// when the buffered window holds no complete frame.
func decodeEmbeddedPeek(br *bufio.Reader, sc *decodeScratch) (est.Report, error) {
	hdr, err := br.Peek(5)
	if err != nil {
		return est.Report{}, err
	}
	switch hdr[0] {
	case frameReport:
		cnt := binary.BigEndian.Uint32(hdr[1:])
		if cnt > maxPairs {
			return est.Report{}, fmt.Errorf("transport: report with %d pairs exceeds limit", cnt)
		}
		if need := 5 + 12*int(cnt); need <= br.Size() {
			raw, err := br.Peek(need)
			if err != nil {
				return est.Report{}, err
			}
			rep := sc.decodePairs(raw[5:], int(cnt))
			br.Discard(need)
			return rep, nil
		}
		br.Discard(5)
		return readReportPairs(br, sc, cnt)
	case frameVecReport:
		nd := binary.BigEndian.Uint32(hdr[1:])
		if nd > maxPairs {
			return est.Report{}, fmt.Errorf("transport: report with %d dims exceeds limit", nd)
		}
		dimsEnd := 5 + 4*int(nd)
		if dimsEnd+4 <= br.Size() {
			raw, err := br.Peek(dimsEnd + 4)
			if err != nil {
				return est.Report{}, err
			}
			nv := binary.BigEndian.Uint32(raw[dimsEnd:])
			if nv > maxPairs {
				return est.Report{}, fmt.Errorf("transport: report with %d values exceeds limit", nv)
			}
			if need := dimsEnd + 4 + 8*int(nv); need <= br.Size() {
				if raw, err = br.Peek(need); err != nil {
					return est.Report{}, err
				}
				dims := sc.growDims(int(nd))
				for i := range dims {
					dims[i] = binary.BigEndian.Uint32(raw[5+4*i:])
				}
				vals := sc.growVals(int(nv))
				for i := range vals {
					vals[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[dimsEnd+4+8*i:]))
				}
				br.Discard(need)
				return est.Report{Dims: dims, Values: vals}, nil
			}
		}
		br.Discard(5)
		return readVecReportRest(br, sc, nd)
	default:
		return est.Report{}, fmt.Errorf("transport: batch embeds frame type 0x%02x", hdr[0])
	}
}

// readBatchInto decodes the embedded reports of a batch frame into sc in
// bounded chunks and hands each chunk to add — for BatchAdder estimators
// that is one stripe-lock acquisition per chunk instead of one per
// report. Reports the sink rejects are skipped, never fatal: accepted
// keeps counting the rest of the chunk and of the batch, exactly as the
// per-report path did. A wire-level decode failure first ingests the
// cleanly decoded prefix (matching readBatchBody, which accumulated as
// it went), then aborts the connection with the error.
func readBatchInto(r io.Reader, sc *decodeScratch, add func([]est.Report) (int, error)) (accepted uint32, err error) {
	cnt, err := sc.readUint32(r)
	if err != nil {
		return 0, err
	}
	if cnt > maxBatch {
		return 0, fmt.Errorf("transport: batch of %d reports exceeds limit %d", cnt, maxBatch)
	}
	if br, ok := r.(*bufio.Reader); ok {
		// The serving path: zero-copy window decode over the connection's
		// read buffer.
		return readBatchBuffered(br, sc, cnt, add)
	}
	for done := uint32(0); done < cnt; {
		sc.reset()
		for done < cnt && len(sc.reps) < batchChunkReports && len(sc.vals) < batchChunkValues {
			var rep est.Report
			var ferr error
			var ft byte
			if ft, ferr = sc.readFrameType(r); ferr == nil {
				switch ft {
				case frameReport:
					rep, ferr = readReportBodyInto(r, sc)
				case frameVecReport:
					rep, ferr = readVecReportBodyInto(r, sc)
				default:
					ferr = fmt.Errorf("transport: batch embeds frame type 0x%02x", ft)
				}
			}
			if ferr != nil {
				n, _ := add(sc.reps)
				return accepted + uint32(n), ferr
			}
			sc.reps = append(sc.reps, rep)
			done++
		}
		n, _ := add(sc.reps)
		accepted += uint32(n)
	}
	return accepted, nil
}

// readBatchBuffered is readBatchInto's fast path over a buffered
// connection: each pass peeks the whole buffered window, parses every
// complete embedded frame out of it in one tight loop, and consumes them
// with a single Discard — bufio bookkeeping is paid per window, not per
// report. Frames that straddle the window edge (or exceed the buffer)
// take the blocking per-frame path.
func readBatchBuffered(br *bufio.Reader, sc *decodeScratch, cnt uint32, add func([]est.Report) (int, error)) (accepted uint32, err error) {
	for done := uint32(0); done < cnt; {
		sc.reset()
		for done < cnt && len(sc.reps) < batchChunkReports && len(sc.vals) < batchChunkValues {
			w, _ := br.Peek(br.Buffered())
			consumed := 0
			room := batchChunkReports - len(sc.reps)
			if left := int(cnt - done); left < room {
				room = left
			}
			for room > 0 && len(sc.vals) < batchChunkValues {
				// Inline fast path for the dominant wire shape: a pair
				// report complete in the window. Everything else (vec
				// reports, oversized counts, partial frames) takes
				// parseEmbedded.
				if len(w)-consumed >= 5 && w[consumed] == frameReport {
					if pairs := int(binary.BigEndian.Uint32(w[consumed+1:])); pairs <= maxPairs && consumed+5+12*pairs <= len(w) {
						sc.reps = append(sc.reps, sc.decodePairs(w[consumed+5:consumed+5+12*pairs], pairs))
						consumed += 5 + 12*pairs
						room--
						done++
						continue
					}
				}
				rep, n, perr := sc.parseEmbedded(w[consumed:])
				if perr != nil {
					br.Discard(consumed)
					n2, _ := add(sc.reps)
					return accepted + uint32(n2), perr
				}
				if n == 0 {
					break
				}
				consumed += n
				sc.reps = append(sc.reps, rep)
				room--
				done++
			}
			br.Discard(consumed)
			if consumed > 0 {
				continue
			}
			// No complete frame buffered: block for exactly one.
			rep, ferr := decodeEmbeddedPeek(br, sc)
			if ferr != nil {
				n2, _ := add(sc.reps)
				return accepted + uint32(n2), ferr
			}
			sc.reps = append(sc.reps, rep)
			done++
		}
		n, _ := add(sc.reps)
		accepted += uint32(n)
	}
	return accepted, nil
}

// writeSnapshotBody serializes an est.Snapshot: kind string, dims, then
// the Cards, Sums and Counts vectors. It enforces the same limits the
// reader does, so an unshippable snapshot fails with a clear error at the
// sender instead of a torn-down connection at the receiver.
func writeSnapshotBody(w io.Writer, s est.Snapshot) error {
	if len(s.Kind) > maxKindLen {
		return fmt.Errorf("transport: snapshot kind %q exceeds %d bytes", s.Kind, maxKindLen)
	}
	if s.Dims > maxPairs || len(s.Cards) > maxPairs || len(s.Sums) > maxPairs || len(s.Counts) > maxPairs {
		return fmt.Errorf("transport: snapshot shape %d/%d/%d/%d exceeds the wire limit of %d",
			s.Dims, len(s.Cards), len(s.Sums), len(s.Counts), maxPairs)
	}
	hdr := make([]byte, 4+len(s.Kind)+4)
	binary.BigEndian.PutUint32(hdr, uint32(len(s.Kind)))
	copy(hdr[4:], s.Kind)
	binary.BigEndian.PutUint32(hdr[4+len(s.Kind):], uint32(s.Dims))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	cards := make([]byte, 4+4*len(s.Cards))
	binary.BigEndian.PutUint32(cards, uint32(len(s.Cards)))
	for i, c := range s.Cards {
		binary.BigEndian.PutUint32(cards[4+4*i:], uint32(c))
	}
	if _, err := w.Write(cards); err != nil {
		return err
	}
	if err := writeFloats(w, s.Sums); err != nil {
		return err
	}
	return writeInts(w, s.Counts)
}

// readSnapshotBody deserializes an est.Snapshot written by
// writeSnapshotBody, rejecting hostile length fields.
func readSnapshotBody(r io.Reader) (est.Snapshot, error) {
	var s est.Snapshot
	var kl uint32
	if err := binary.Read(r, binary.BigEndian, &kl); err != nil {
		return s, err
	}
	if kl > maxKindLen {
		return s, fmt.Errorf("transport: snapshot kind of %d bytes exceeds limit", kl)
	}
	kind := make([]byte, kl)
	if _, err := io.ReadFull(r, kind); err != nil {
		return s, err
	}
	s.Kind = string(kind)
	var dims uint32
	if err := binary.Read(r, binary.BigEndian, &dims); err != nil {
		return s, err
	}
	if dims > maxPairs {
		return s, fmt.Errorf("transport: snapshot with %d dims exceeds limit", dims)
	}
	s.Dims = int(dims)
	var nc uint32
	if err := binary.Read(r, binary.BigEndian, &nc); err != nil {
		return s, err
	}
	if nc > maxPairs {
		return s, fmt.Errorf("transport: snapshot with %d cards exceeds limit", nc)
	}
	if nc > 0 {
		buf := make([]byte, 4*nc)
		if _, err := io.ReadFull(r, buf); err != nil {
			return s, err
		}
		s.Cards = make([]int, nc)
		for i := range s.Cards {
			s.Cards[i] = int(binary.BigEndian.Uint32(buf[4*i:]))
		}
	}
	var err error
	if s.Sums, err = readFloats(r); err != nil {
		return s, err
	}
	if s.Counts, err = readInts(r); err != nil {
		return s, err
	}
	return s, nil
}

// EncodeSnapshot serializes an est.Snapshot in the canonical wire layout
// (the SNAPSHOT/MERGE frame body, without a frame type byte). It is the
// codec the persist package embeds in checkpoint files, so on-disk and
// on-wire snapshots are byte-identical and stay in sync by construction.
func EncodeSnapshot(w io.Writer, s est.Snapshot) error { return writeSnapshotBody(w, s) }

// DecodeSnapshot deserializes an est.Snapshot written by EncodeSnapshot,
// rejecting hostile length fields exactly as the wire reader does.
func DecodeSnapshot(r io.Reader) (est.Snapshot, error) { return readSnapshotBody(r) }

// EncodeQuerySpec serializes an est.QuerySpec in the canonical wire
// layout (the OPENQUERY frame body, without the frame type byte) — the
// spec codec checkpoint files embed.
func EncodeQuerySpec(w io.Writer, spec est.QuerySpec) error { return writeQuerySpecBody(w, spec) }

// DecodeQuerySpec deserializes an est.QuerySpec written by
// EncodeQuerySpec, rejecting hostile length fields.
func DecodeQuerySpec(r io.Reader) (est.QuerySpec, error) { return readQuerySpecBody(r) }

// WriteMerge serializes one merge frame (0x08): a serialized snapshot the
// receiving collector folds into its estimator.
func WriteMerge(w io.Writer, s est.Snapshot) error {
	if _, err := w.Write([]byte{frameMerge}); err != nil {
		return err
	}
	return writeSnapshotBody(w, s)
}

// writeFloats writes a uint32 length followed by the values.
func writeFloats(w io.Writer, xs []float64) error {
	buf := make([]byte, 4+8*len(xs))
	binary.BigEndian.PutUint32(buf, uint32(len(xs)))
	for i, x := range xs {
		binary.BigEndian.PutUint64(buf[4+8*i:], math.Float64bits(x))
	}
	_, err := w.Write(buf)
	return err
}

// readFloats reads a uint32 length followed by that many float64s.
func readFloats(r io.Reader) ([]float64, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if n > maxPairs {
		return nil, fmt.Errorf("transport: vector of %d values exceeds limit", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// writeInts writes a uint32 length followed by int64 values.
func writeInts(w io.Writer, xs []int64) error {
	buf := make([]byte, 4+8*len(xs))
	binary.BigEndian.PutUint32(buf, uint32(len(xs)))
	for i, x := range xs {
		binary.BigEndian.PutUint64(buf[4+8*i:], uint64(x))
	}
	_, err := w.Write(buf)
	return err
}

// writeString writes a uint32 length followed by the bytes of s.
func writeString(w io.Writer, s string, max int) error {
	if len(s) > max {
		return fmt.Errorf("transport: string of %d bytes exceeds limit %d", len(s), max)
	}
	buf := make([]byte, 4+len(s))
	binary.BigEndian.PutUint32(buf, uint32(len(s)))
	copy(buf[4:], s)
	_, err := w.Write(buf)
	return err
}

// readString reads a uint32 length followed by that many bytes, rejecting
// lengths beyond max.
func readString(r io.Reader, max int) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return "", err
	}
	if n > uint32(max) {
		return "", fmt.Errorf("transport: string of %d bytes exceeds limit %d", n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// writeSelect writes one SELECT route header (0x0A): the next frame on the
// connection executes against the named query.
func writeSelect(w io.Writer, name string) error {
	if _, err := w.Write([]byte{frameSelect}); err != nil {
		return err
	}
	return writeString(w, name, maxNameLen)
}

// writeSelectGen writes one SELECTGEN route header (0x10): the next frame
// executes against the named query only if its registration generation
// still matches gen.
func writeSelectGen(w io.Writer, name string, gen uint64) error {
	if _, err := w.Write([]byte{frameSelectGen}); err != nil {
		return err
	}
	if err := writeString(w, name, maxNameLen); err != nil {
		return err
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], gen)
	_, err := w.Write(buf[:])
	return err
}

// writeQuerySpecBody serializes an est.QuerySpec: name, kind and mechanism
// strings, the ε budget, d and m, then the cardinality vector.
func writeQuerySpecBody(w io.Writer, spec est.QuerySpec) error {
	if err := writeString(w, spec.Name, maxNameLen); err != nil {
		return err
	}
	if err := writeString(w, spec.Kind, maxKindLen); err != nil {
		return err
	}
	if err := writeString(w, spec.Mech, maxKindLen); err != nil {
		return err
	}
	if spec.D < 0 || spec.D > maxPairs || spec.M < 0 || spec.M > maxPairs || len(spec.Cards) > maxPairs {
		return fmt.Errorf("transport: query spec shape %d/%d/%d exceeds the wire limit of %d",
			spec.D, spec.M, len(spec.Cards), maxPairs)
	}
	buf := make([]byte, 8+4+4+4+4*len(spec.Cards))
	binary.BigEndian.PutUint64(buf, math.Float64bits(spec.Eps))
	binary.BigEndian.PutUint32(buf[8:], uint32(spec.D))
	binary.BigEndian.PutUint32(buf[12:], uint32(spec.M))
	binary.BigEndian.PutUint32(buf[16:], uint32(len(spec.Cards)))
	for i, c := range spec.Cards {
		binary.BigEndian.PutUint32(buf[20+4*i:], uint32(c))
	}
	_, err := w.Write(buf)
	return err
}

// readQuerySpecBody deserializes an est.QuerySpec written by
// writeQuerySpecBody, rejecting hostile length fields.
func readQuerySpecBody(r io.Reader) (est.QuerySpec, error) {
	var spec est.QuerySpec
	var err error
	if spec.Name, err = readString(r, maxNameLen); err != nil {
		return spec, err
	}
	if spec.Kind, err = readString(r, maxKindLen); err != nil {
		return spec, err
	}
	if spec.Mech, err = readString(r, maxKindLen); err != nil {
		return spec, err
	}
	var fixed [16]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return spec, err
	}
	spec.Eps = math.Float64frombits(binary.BigEndian.Uint64(fixed[:8]))
	d := binary.BigEndian.Uint32(fixed[8:12])
	m := binary.BigEndian.Uint32(fixed[12:16])
	if d > maxPairs || m > maxPairs {
		return spec, fmt.Errorf("transport: query spec d=%d m=%d exceeds limit", d, m)
	}
	spec.D, spec.M = int(d), int(m)
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return spec, err
	}
	if n > maxPairs {
		return spec, fmt.Errorf("transport: query spec with %d cards exceeds limit", n)
	}
	if n > 0 {
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return spec, err
		}
		spec.Cards = make([]int, n)
		total := 0
		for i := range spec.Cards {
			c := binary.BigEndian.Uint32(buf[4*i:])
			// The flattened entry space Σ cards is what the collector
			// allocates; a hostile card value must not force that
			// allocation past the same bound every report vector obeys.
			if c > maxPairs {
				return spec, fmt.Errorf("transport: query spec card %d exceeds limit", c)
			}
			if total += int(c); total > maxPairs {
				return spec, fmt.Errorf("transport: query spec with %d total entries exceeds limit %d", total, maxPairs)
			}
			spec.Cards[i] = int(c)
		}
	}
	return spec, nil
}

// WriteOpenQuery serializes one OPENQUERY frame (0x09): the spec of a new
// named query for the receiving collector to register.
func WriteOpenQuery(w io.Writer, spec est.QuerySpec) error {
	if _, err := w.Write([]byte{frameOpenQuery}); err != nil {
		return err
	}
	return writeQuerySpecBody(w, spec)
}

// readInts reads a uint32 length followed by that many int64s.
func readInts(r io.Reader) ([]int64, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if n > maxPairs {
		return nil, fmt.Errorf("transport: vector of %d values exceeds limit", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
