// Package transport moves LDP reports across a real network boundary: a
// compact length-prefixed binary wire format (encoding/binary) and a TCP
// collector server with a matching client. It exists so the protocol is
// exercised end to end — user-side perturbation, serialization, a socket,
// and collector-side aggregation — not just in-process.
//
// Wire format (big endian). Every frame starts with a one-byte type:
//
//	0x01 REPORT    uint32 count, then count × (uint32 dim, float64 value)
//	0x02 ESTIMATE  (no payload) — server replies uint32 d, then d × float64
//	0x03 COUNTS    (no payload) — server replies uint32 d, then d × int64
//	0x04 ENHANCED  (no payload) — server replies a status byte; on 0x00 it
//	     follows with uint32 d, then d × float64 (the HDR4ME-re-calibrated
//	     estimate), on 0xFF the estimator does not support enhancement
//	0x05 VECREPORT uint32 ndims, ndims × uint32 dim, uint32 nvals,
//	     nvals × float64 — a report whose dim and value lists have
//	     independent lengths (whole-tuple and frequency families)
//	0x06 BATCH     uint32 count, then count × one embedded report frame
//	     (each a full 0x01 or 0x05 frame, type byte included) — server
//	     replies a status byte then uint32 accepted-count; reports the
//	     estimator rejects are skipped, not fatal
//	0x07 SNAPSHOT  (no payload) — server replies a status byte; on 0x00 it
//	     follows with the serialized est.Snapshot of its estimator
//	0x08 MERGE     a serialized est.Snapshot — the server folds it into
//	     its estimator and replies a single status byte
//	0x09 OPENQUERY a serialized est.QuerySpec — the server registers a new
//	     named query (admission-checked against the privacy budget) and
//	     replies a status byte; on 0xFF a length-prefixed error string
//	     follows
//	0x0A SELECT    uint32 name length + name bytes — a route header, not a
//	     standalone exchange: it prefixes exactly one frame of types
//	     0x01–0x08, and that frame's exchange executes against the named
//	     query instead of the default one
//
// A report frame (0x01 or 0x05) is acknowledged with a single 0x00 byte
// (ok) or 0xFF (rejected). Frames are small, so no additional length prefix
// is needed beyond the counts. How a report's dims/values are interpreted
// is up to the serving estimator family (see est.Report); the classic pair
// frame 0x01 remains the compact encoding for the mean family where the
// two lists pair up.
//
// Routing (the multi-query service). A collector hosts an est.Registry of
// named queries; un-routed frames resolve to the query named
// est.DefaultName, so legacy single-tenant clients keep working
// unchanged. A SELECT-prefixed ESTIMATE or COUNTS exchange gains a
// leading status byte before its vector reply (the un-routed forms have
// nowhere to report an unknown query name; the routed forms do). All
// other routed exchanges keep their legacy reply shapes — a routing
// failure surfaces as the frame's ordinary rejection status, after the
// server has consumed the frame body, so the connection stays usable.
//
// A serialized est.Snapshot is: uint32 kind length, kind bytes, uint32
// dims, then the Cards, Sums and Counts vectors each as uint32 length +
// elements (uint32 cards, float64 sums, int64 counts). SNAPSHOT and MERGE
// make shard collectors composable over the wire: a leaf collector
// aggregates its region's reports, ships one snapshot upstream, and the
// parent folds it in associatively — no report replay, no raw data.
//
// Both sides of a connection are buffered (bufio); the server flushes
// after every reply, clients flush before every read of a reply. BATCH
// amortizes the per-report syscall and ack round-trip that bound
// per-report Send throughput.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/hdr4me/hdr4me/internal/est"
)

// Frame type bytes.
const (
	frameReport    = 0x01
	frameEstimate  = 0x02
	frameCounts    = 0x03
	frameEnhanced  = 0x04
	frameVecReport = 0x05
	frameBatch     = 0x06
	frameSnapshot  = 0x07
	frameMerge     = 0x08
	frameOpenQuery = 0x09
	frameSelect    = 0x0A

	ackOK  = 0x00
	ackErr = 0xFF
)

// maxNameLen caps query names and other short strings on the wire.
const maxNameLen = 128

// maxErrLen caps the error string an OPENQUERY rejection carries.
const maxErrLen = 1 << 10

// maxPairs caps a report frame to guard the server against hostile or
// corrupt length fields.
const maxPairs = 1 << 20

// maxBatch caps the report count of one BATCH frame; larger batches gain
// nothing (the syscall is already amortized) and a hostile count must not
// pin a connection goroutine for unbounded work.
const maxBatch = 1 << 16

// maxKindLen caps the estimator-kind string of a serialized snapshot.
const maxKindLen = 64

// WriteReport serializes one pair-shaped report frame (0x01) to w. Reports
// whose dim and value lists differ in length must use WriteVecReport.
func WriteReport(w io.Writer, rep est.Report) error {
	if len(rep.Dims) != len(rep.Values) {
		return fmt.Errorf("transport: report dims/values length mismatch")
	}
	buf := make([]byte, 1+4+len(rep.Dims)*12)
	buf[0] = frameReport
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(rep.Dims)))
	off := 5
	for i, d := range rep.Dims {
		binary.BigEndian.PutUint32(buf[off:], d)
		binary.BigEndian.PutUint64(buf[off+4:], math.Float64bits(rep.Values[i]))
		off += 12
	}
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads the next frame type byte from r.
func readFrameType(r io.Reader) (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// readReportBody reads the payload of a pair-shaped report frame.
func readReportBody(r io.Reader) (est.Report, error) {
	var cnt uint32
	if err := binary.Read(r, binary.BigEndian, &cnt); err != nil {
		return est.Report{}, err
	}
	if cnt > maxPairs {
		return est.Report{}, fmt.Errorf("transport: report with %d pairs exceeds limit", cnt)
	}
	rep := est.Report{Dims: make([]uint32, cnt), Values: make([]float64, cnt)}
	buf := make([]byte, 12*cnt)
	if _, err := io.ReadFull(r, buf); err != nil {
		return est.Report{}, err
	}
	for i := uint32(0); i < cnt; i++ {
		off := 12 * i
		rep.Dims[i] = binary.BigEndian.Uint32(buf[off:])
		rep.Values[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[off+4:]))
	}
	return rep, nil
}

// WriteVecReport serializes one vector report frame (0x05): dims and
// values as independently sized lists.
func WriteVecReport(w io.Writer, rep est.Report) error {
	buf := make([]byte, 1+4+4*len(rep.Dims)+4+8*len(rep.Values))
	buf[0] = frameVecReport
	off := 1
	binary.BigEndian.PutUint32(buf[off:], uint32(len(rep.Dims)))
	off += 4
	for _, d := range rep.Dims {
		binary.BigEndian.PutUint32(buf[off:], d)
		off += 4
	}
	binary.BigEndian.PutUint32(buf[off:], uint32(len(rep.Values)))
	off += 4
	for _, v := range rep.Values {
		binary.BigEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	_, err := w.Write(buf)
	return err
}

// readVecReportBody reads the payload of a vector report frame.
func readVecReportBody(r io.Reader) (est.Report, error) {
	var nd uint32
	if err := binary.Read(r, binary.BigEndian, &nd); err != nil {
		return est.Report{}, err
	}
	if nd > maxPairs {
		return est.Report{}, fmt.Errorf("transport: report with %d dims exceeds limit", nd)
	}
	rep := est.Report{Dims: make([]uint32, nd)}
	dbuf := make([]byte, 4*nd)
	if _, err := io.ReadFull(r, dbuf); err != nil {
		return est.Report{}, err
	}
	for i := range rep.Dims {
		rep.Dims[i] = binary.BigEndian.Uint32(dbuf[4*i:])
	}
	var nv uint32
	if err := binary.Read(r, binary.BigEndian, &nv); err != nil {
		return est.Report{}, err
	}
	if nv > maxPairs {
		return est.Report{}, fmt.Errorf("transport: report with %d values exceeds limit", nv)
	}
	rep.Values = make([]float64, nv)
	vbuf := make([]byte, 8*nv)
	if _, err := io.ReadFull(r, vbuf); err != nil {
		return est.Report{}, err
	}
	for i := range rep.Values {
		rep.Values[i] = math.Float64frombits(binary.BigEndian.Uint64(vbuf[8*i:]))
	}
	return rep, nil
}

// WriteBatch serializes one batch frame (0x06): a uint32 report count
// followed by that many embedded report frames. Pair-shaped reports embed
// as 0x01 frames, all others as 0x05, exactly as Client.Send would pick.
func WriteBatch(w io.Writer, reps []est.Report) error {
	if len(reps) > maxBatch {
		return fmt.Errorf("transport: batch of %d reports exceeds limit %d", len(reps), maxBatch)
	}
	var hdr [5]byte
	hdr[0] = frameBatch
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(reps)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, rep := range reps {
		var err error
		if len(rep.Dims) == len(rep.Values) {
			err = WriteReport(w, rep)
		} else {
			err = WriteVecReport(w, rep)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// readBatchBody streams the embedded reports of a batch frame to fn,
// one at a time, so the server never holds a whole hostile batch in
// memory. fn's error marks that report rejected (counted, not fatal);
// a malformed embedded frame aborts with an error. It returns how many
// reports fn accepted.
func readBatchBody(r io.Reader, fn func(est.Report) error) (accepted uint32, err error) {
	var cnt uint32
	if err := binary.Read(r, binary.BigEndian, &cnt); err != nil {
		return 0, err
	}
	if cnt > maxBatch {
		return 0, fmt.Errorf("transport: batch of %d reports exceeds limit %d", cnt, maxBatch)
	}
	for i := uint32(0); i < cnt; i++ {
		ft, err := readFrameType(r)
		if err != nil {
			return accepted, err
		}
		var rep est.Report
		switch ft {
		case frameReport:
			rep, err = readReportBody(r)
		case frameVecReport:
			rep, err = readVecReportBody(r)
		default:
			return accepted, fmt.Errorf("transport: batch embeds frame type 0x%02x", ft)
		}
		if err != nil {
			return accepted, err
		}
		if fn(rep) == nil {
			accepted++
		}
	}
	return accepted, nil
}

// writeSnapshotBody serializes an est.Snapshot: kind string, dims, then
// the Cards, Sums and Counts vectors. It enforces the same limits the
// reader does, so an unshippable snapshot fails with a clear error at the
// sender instead of a torn-down connection at the receiver.
func writeSnapshotBody(w io.Writer, s est.Snapshot) error {
	if len(s.Kind) > maxKindLen {
		return fmt.Errorf("transport: snapshot kind %q exceeds %d bytes", s.Kind, maxKindLen)
	}
	if s.Dims > maxPairs || len(s.Cards) > maxPairs || len(s.Sums) > maxPairs || len(s.Counts) > maxPairs {
		return fmt.Errorf("transport: snapshot shape %d/%d/%d/%d exceeds the wire limit of %d",
			s.Dims, len(s.Cards), len(s.Sums), len(s.Counts), maxPairs)
	}
	hdr := make([]byte, 4+len(s.Kind)+4)
	binary.BigEndian.PutUint32(hdr, uint32(len(s.Kind)))
	copy(hdr[4:], s.Kind)
	binary.BigEndian.PutUint32(hdr[4+len(s.Kind):], uint32(s.Dims))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	cards := make([]byte, 4+4*len(s.Cards))
	binary.BigEndian.PutUint32(cards, uint32(len(s.Cards)))
	for i, c := range s.Cards {
		binary.BigEndian.PutUint32(cards[4+4*i:], uint32(c))
	}
	if _, err := w.Write(cards); err != nil {
		return err
	}
	if err := writeFloats(w, s.Sums); err != nil {
		return err
	}
	return writeInts(w, s.Counts)
}

// readSnapshotBody deserializes an est.Snapshot written by
// writeSnapshotBody, rejecting hostile length fields.
func readSnapshotBody(r io.Reader) (est.Snapshot, error) {
	var s est.Snapshot
	var kl uint32
	if err := binary.Read(r, binary.BigEndian, &kl); err != nil {
		return s, err
	}
	if kl > maxKindLen {
		return s, fmt.Errorf("transport: snapshot kind of %d bytes exceeds limit", kl)
	}
	kind := make([]byte, kl)
	if _, err := io.ReadFull(r, kind); err != nil {
		return s, err
	}
	s.Kind = string(kind)
	var dims uint32
	if err := binary.Read(r, binary.BigEndian, &dims); err != nil {
		return s, err
	}
	if dims > maxPairs {
		return s, fmt.Errorf("transport: snapshot with %d dims exceeds limit", dims)
	}
	s.Dims = int(dims)
	var nc uint32
	if err := binary.Read(r, binary.BigEndian, &nc); err != nil {
		return s, err
	}
	if nc > maxPairs {
		return s, fmt.Errorf("transport: snapshot with %d cards exceeds limit", nc)
	}
	if nc > 0 {
		buf := make([]byte, 4*nc)
		if _, err := io.ReadFull(r, buf); err != nil {
			return s, err
		}
		s.Cards = make([]int, nc)
		for i := range s.Cards {
			s.Cards[i] = int(binary.BigEndian.Uint32(buf[4*i:]))
		}
	}
	var err error
	if s.Sums, err = readFloats(r); err != nil {
		return s, err
	}
	if s.Counts, err = readInts(r); err != nil {
		return s, err
	}
	return s, nil
}

// WriteMerge serializes one merge frame (0x08): a serialized snapshot the
// receiving collector folds into its estimator.
func WriteMerge(w io.Writer, s est.Snapshot) error {
	if _, err := w.Write([]byte{frameMerge}); err != nil {
		return err
	}
	return writeSnapshotBody(w, s)
}

// writeFloats writes a uint32 length followed by the values.
func writeFloats(w io.Writer, xs []float64) error {
	buf := make([]byte, 4+8*len(xs))
	binary.BigEndian.PutUint32(buf, uint32(len(xs)))
	for i, x := range xs {
		binary.BigEndian.PutUint64(buf[4+8*i:], math.Float64bits(x))
	}
	_, err := w.Write(buf)
	return err
}

// readFloats reads a uint32 length followed by that many float64s.
func readFloats(r io.Reader) ([]float64, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if n > maxPairs {
		return nil, fmt.Errorf("transport: vector of %d values exceeds limit", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// writeInts writes a uint32 length followed by int64 values.
func writeInts(w io.Writer, xs []int64) error {
	buf := make([]byte, 4+8*len(xs))
	binary.BigEndian.PutUint32(buf, uint32(len(xs)))
	for i, x := range xs {
		binary.BigEndian.PutUint64(buf[4+8*i:], uint64(x))
	}
	_, err := w.Write(buf)
	return err
}

// writeString writes a uint32 length followed by the bytes of s.
func writeString(w io.Writer, s string, max int) error {
	if len(s) > max {
		return fmt.Errorf("transport: string of %d bytes exceeds limit %d", len(s), max)
	}
	buf := make([]byte, 4+len(s))
	binary.BigEndian.PutUint32(buf, uint32(len(s)))
	copy(buf[4:], s)
	_, err := w.Write(buf)
	return err
}

// readString reads a uint32 length followed by that many bytes, rejecting
// lengths beyond max.
func readString(r io.Reader, max int) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return "", err
	}
	if n > uint32(max) {
		return "", fmt.Errorf("transport: string of %d bytes exceeds limit %d", n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// writeSelect writes one SELECT route header (0x0A): the next frame on the
// connection executes against the named query.
func writeSelect(w io.Writer, name string) error {
	if _, err := w.Write([]byte{frameSelect}); err != nil {
		return err
	}
	return writeString(w, name, maxNameLen)
}

// writeQuerySpecBody serializes an est.QuerySpec: name, kind and mechanism
// strings, the ε budget, d and m, then the cardinality vector.
func writeQuerySpecBody(w io.Writer, spec est.QuerySpec) error {
	if err := writeString(w, spec.Name, maxNameLen); err != nil {
		return err
	}
	if err := writeString(w, spec.Kind, maxKindLen); err != nil {
		return err
	}
	if err := writeString(w, spec.Mech, maxKindLen); err != nil {
		return err
	}
	if spec.D < 0 || spec.D > maxPairs || spec.M < 0 || spec.M > maxPairs || len(spec.Cards) > maxPairs {
		return fmt.Errorf("transport: query spec shape %d/%d/%d exceeds the wire limit of %d",
			spec.D, spec.M, len(spec.Cards), maxPairs)
	}
	buf := make([]byte, 8+4+4+4+4*len(spec.Cards))
	binary.BigEndian.PutUint64(buf, math.Float64bits(spec.Eps))
	binary.BigEndian.PutUint32(buf[8:], uint32(spec.D))
	binary.BigEndian.PutUint32(buf[12:], uint32(spec.M))
	binary.BigEndian.PutUint32(buf[16:], uint32(len(spec.Cards)))
	for i, c := range spec.Cards {
		binary.BigEndian.PutUint32(buf[20+4*i:], uint32(c))
	}
	_, err := w.Write(buf)
	return err
}

// readQuerySpecBody deserializes an est.QuerySpec written by
// writeQuerySpecBody, rejecting hostile length fields.
func readQuerySpecBody(r io.Reader) (est.QuerySpec, error) {
	var spec est.QuerySpec
	var err error
	if spec.Name, err = readString(r, maxNameLen); err != nil {
		return spec, err
	}
	if spec.Kind, err = readString(r, maxKindLen); err != nil {
		return spec, err
	}
	if spec.Mech, err = readString(r, maxKindLen); err != nil {
		return spec, err
	}
	var fixed [16]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return spec, err
	}
	spec.Eps = math.Float64frombits(binary.BigEndian.Uint64(fixed[:8]))
	d := binary.BigEndian.Uint32(fixed[8:12])
	m := binary.BigEndian.Uint32(fixed[12:16])
	if d > maxPairs || m > maxPairs {
		return spec, fmt.Errorf("transport: query spec d=%d m=%d exceeds limit", d, m)
	}
	spec.D, spec.M = int(d), int(m)
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return spec, err
	}
	if n > maxPairs {
		return spec, fmt.Errorf("transport: query spec with %d cards exceeds limit", n)
	}
	if n > 0 {
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return spec, err
		}
		spec.Cards = make([]int, n)
		total := 0
		for i := range spec.Cards {
			c := binary.BigEndian.Uint32(buf[4*i:])
			// The flattened entry space Σ cards is what the collector
			// allocates; a hostile card value must not force that
			// allocation past the same bound every report vector obeys.
			if c > maxPairs {
				return spec, fmt.Errorf("transport: query spec card %d exceeds limit", c)
			}
			if total += int(c); total > maxPairs {
				return spec, fmt.Errorf("transport: query spec with %d total entries exceeds limit %d", total, maxPairs)
			}
			spec.Cards[i] = int(c)
		}
	}
	return spec, nil
}

// WriteOpenQuery serializes one OPENQUERY frame (0x09): the spec of a new
// named query for the receiving collector to register.
func WriteOpenQuery(w io.Writer, spec est.QuerySpec) error {
	if _, err := w.Write([]byte{frameOpenQuery}); err != nil {
		return err
	}
	return writeQuerySpecBody(w, spec)
}

// readInts reads a uint32 length followed by that many int64s.
func readInts(r io.Reader) ([]int64, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if n > maxPairs {
		return nil, fmt.Errorf("transport: vector of %d values exceeds limit", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
