package transport

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hdr4me/hdr4me/internal/est"
	"github.com/hdr4me/hdr4me/internal/freq"
	"github.com/hdr4me/hdr4me/internal/highdim"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/mathx"
	"github.com/hdr4me/hdr4me/internal/recal"
)

func TestSendBatchCountsRejectsPartially(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, p)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	batch := []est.Report{
		{Dims: []uint32{0}, Values: []float64{0.5}},
		{Dims: []uint32{99}, Values: []float64{1}}, // out of range: rejected
		{Dims: []uint32{3}, Values: []float64{-0.25}},
	}
	accepted, err := cl.SendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 2 {
		t.Fatalf("accepted %d of batch, want 2", accepted)
	}
	// The rejected report must not poison the connection or the state.
	counts, err := cl.Counts()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 2 {
		t.Fatalf("collector saw %d pairs, want 2", total)
	}
}

func TestSendBatchEmptyAndOversized(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, p)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if accepted, err := cl.SendBatch(nil); err != nil || accepted != 0 {
		t.Fatalf("empty batch: accepted %d, err %v", accepted, err)
	}
	if _, err := cl.SendBatch(make([]est.Report, maxBatch+1)); err == nil {
		t.Fatal("oversized batch must be refused client-side")
	}
	// The refusal happened before any bytes were written: still usable.
	if _, err := cl.Counts(); err != nil {
		t.Fatalf("connection unusable after refused oversized batch: %v", err)
	}
}

func TestBufferedClientSizeAndExplicitFlush(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, p)
	bc, err := DialBuffered(addr, WithBatchSize(8))
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	const reports = 100 // 12 full batches pipeline, 4 left for Flush
	for i := 0; i < reports; i++ {
		if err := bc.Add(est.Report{Dims: []uint32{uint32(i % 4)}, Values: []float64{0.5}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bc.Flush(); err != nil {
		t.Fatal(err)
	}
	if bc.Sent() != reports || bc.Accepted() != reports {
		t.Fatalf("sent %d accepted %d, want %d", bc.Sent(), bc.Accepted(), reports)
	}
	// After Flush the connection is quiescent: direct Client queries work.
	counts, err := bc.c.Counts()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != reports {
		t.Fatalf("collector saw %d pairs, want %d", total, reports)
	}
}

func TestBufferedClientFlushInterval(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, p)
	bc, err := DialBuffered(addr, WithBatchSize(1024), WithFlushInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	if err := bc.Add(est.Report{Dims: []uint32{1}, Values: []float64{0.5}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if bc.Accepted() == 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("interval flush never shipped the report (accepted %d)", bc.Accepted())
}

func TestBufferedClientCloseFlushes(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startTestServer(t, p)
	bc, err := DialBuffered(addr, WithBatchSize(1024))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := bc.Add(est.Report{Dims: []uint32{0}, Values: []float64{0.1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bc.Add(est.Report{}); err == nil {
		t.Fatal("Add after Close must fail")
	}
	if got := srv.Est.Counts()[0]; got != 5 {
		t.Fatalf("close flushed %d reports, want 5", got)
	}
}

// TestClientConcurrentSendAndEstimate interleaves Send and Estimate from
// multiple goroutines on ONE client: the internal mutex must keep the
// frame and ack streams in sync (run with -race).
func TestClientConcurrentSendAndEstimate(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, p)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				switch (g + i) % 3 {
				case 0:
					rep := est.Report{Dims: []uint32{uint32(i % 8)}, Values: []float64{0.25}}
					if err := cl.Send(rep); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				case 1:
					if e, err := cl.Estimate(); err != nil || len(e) != 8 {
						t.Errorf("estimate: len %d, err %v", len(e), err)
						return
					}
				default:
					if _, err := cl.SendBatch([]est.Report{
						{Dims: []uint32{uint32(i % 8)}, Values: []float64{-0.25}},
					}); err != nil {
						t.Errorf("batch: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardFoldOverTCP is the end-to-end shard-composition check: the same
// reports split across two shard collectors, folded into a root over
// SNAPSHOT (pull) and MERGE (push) wire frames, must reproduce the
// single-collector estimate.
func TestShardFoldOverTCP(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 4, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic report set shared by both topologies.
	rng := mathx.NewRNG(7)
	reports := make([]est.Report, 2000)
	for i := range reports {
		rep := est.Report{Dims: make([]uint32, 3), Values: make([]float64, 3)}
		base := uint32(i % 4) // dims must be strictly increasing within [0, 6)
		for k := 0; k < 3; k++ {
			rep.Dims[k] = base + uint32(k)
			rep.Values[k] = ldp.Laplace{}.Perturb(rng, math.Sin(float64(i+k)), 4.0/3)
		}
		reports[i] = rep
	}

	_, single := startTestServer(t, p)
	_, shardA := startTestServer(t, p)
	_, shardB := startTestServer(t, p)
	_, root := startTestServer(t, p)

	send := func(addr string, reps []est.Report) {
		t.Helper()
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		accepted, err := cl.SendBatch(reps)
		if err != nil || accepted != len(reps) {
			t.Fatalf("batch to %s: accepted %d/%d, err %v", addr, accepted, len(reps), err)
		}
	}
	send(single, reports)
	half := len(reports) / 2
	send(shardA, reports[:half])
	send(shardB, reports[half:])

	// Fold A by pulling its snapshot and pushing it into the root; fold B
	// by pulling straight into a push — both directions over the wire.
	clA, err := Dial(shardA)
	if err != nil {
		t.Fatal(err)
	}
	defer clA.Close()
	snapA, err := clA.PullSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	clRoot, err := Dial(root)
	if err != nil {
		t.Fatal(err)
	}
	defer clRoot.Close()
	if err := clRoot.PushSnapshot(snapA); err != nil {
		t.Fatal(err)
	}
	clB, err := Dial(shardB)
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	snapB, err := clB.PullSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := clRoot.PushSnapshot(snapB); err != nil {
		t.Fatal(err)
	}

	clS, err := Dial(single)
	if err != nil {
		t.Fatal(err)
	}
	defer clS.Close()
	want, err := clS.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := clRoot.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("estimate widths differ: %d vs %d", len(got), len(want))
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-9*math.Max(1, math.Abs(want[j])) {
			t.Fatalf("dim %d: folded %v, single %v", j, got[j], want[j])
		}
	}
	wantCounts, err := clS.Counts()
	if err != nil {
		t.Fatal(err)
	}
	gotCounts, err := clRoot.Counts()
	if err != nil {
		t.Fatal(err)
	}
	for j := range wantCounts {
		if gotCounts[j] != wantCounts[j] {
			t.Fatalf("counts dim %d: folded %d, single %d", j, gotCounts[j], wantCounts[j])
		}
	}
}

// TestMergeKindMismatchNACK: pushing a frequency snapshot into a mean
// collector must NACK without killing the connection.
func TestMergeKindMismatchNACK(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, p)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f, err := freq.NewFlat(freq.Protocol{Mech: ldp.Laplace{}, Eps: 1, Cards: []int{3}, M: 1},
		recal.DefaultConfig(recal.RegL1))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.PushSnapshot(f.Snapshot()); err == nil {
		t.Fatal("mean collector must reject a freq snapshot")
	}
	if _, err := cl.Counts(); err != nil {
		t.Fatalf("connection unusable after rejected merge: %v", err)
	}
}

// TestSnapshotRoundTripOverWireForEveryFamily pulls a snapshot from a
// server of each estimator family and merges it into a fresh local peer.
func TestSnapshotRoundTripOverWireForEveryFamily(t *testing.T) {
	freshMean := func() est.Estimator {
		p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		return highdim.NewAggregator(p)
	}
	freshFreq := func() est.Estimator {
		f, err := freq.NewFlat(freq.Protocol{Mech: ldp.Laplace{}, Eps: 1, Cards: []int{2, 3}, M: 2},
			recal.DefaultConfig(recal.RegL1))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	freshWT := func() est.Estimator {
		md, err := highdim.NewDuchiMD(3, 1)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := highdim.NewMDAggregator(md)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	cases := []struct {
		name  string
		fresh func() est.Estimator
		rep   est.Report
	}{
		{"mean", freshMean, est.Report{Dims: []uint32{0, 2}, Values: []float64{0.5, -0.5}}},
		{"freq", freshFreq, est.Report{Dims: []uint32{0, 1}, Values: []float64{1, -1, -1, 1, -1}}},
		{"wholetuple", freshWT, est.Report{Values: []float64{0.5, -0.5, 0.25}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := NewServer(tc.fresh())
			srv.Logf = t.Logf
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			cl, err := Dial(addr.String())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			if err := cl.Send(tc.rep); err != nil {
				t.Fatal(err)
			}
			snap, err := cl.PullSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			peer := tc.fresh()
			if err := peer.Merge(snap); err != nil {
				t.Fatalf("merge pulled snapshot: %v", err)
			}
			want, got := srv.Est.Estimate(), peer.Estimate()
			for j := range want {
				if math.Abs(got[j]-want[j]) > 1e-12 {
					t.Fatalf("dim %d: peer %v, server %v", j, got[j], want[j])
				}
			}
		})
	}
}

// flakyListener fails every Accept with a transient error until closed —
// the EMFILE scenario the accept-loop backoff exists for.
type flakyListener struct {
	accepts atomic.Int64
	done    chan struct{}
	once    sync.Once
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.accepts.Add(1)
	select {
	case <-l.done:
		return nil, net.ErrClosed
	default:
		return nil, fmt.Errorf("accept: too many open files")
	}
}

func (l *flakyListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *flakyListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// TestAcceptLoopBacksOff: a persistently failing Accept must retry with
// exponential backoff, not hot-spin. 150 ms covers at most the 5, 10, 20,
// 40, 80 ms waits — a spinning loop would log thousands of attempts.
func TestAcceptLoopBacksOff(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(highdim.NewAggregator(p))
	srv.Logf = func(string, ...any) {}
	ln := &flakyListener{done: make(chan struct{})}
	if err := srv.Serve(ln); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	got := ln.accepts.Load()
	if got < 2 {
		t.Fatalf("accept loop retried only %d times; backoff must keep retrying", got)
	}
	if got > 20 {
		t.Fatalf("accept loop retried %d times in 150ms; it is hot-spinning", got)
	}
}

// TestCloseBeforeListen: closing a server that never listened is a safe
// no-op, and listening afterwards reports the server closed.
func TestCloseBeforeListen(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(highdim.NewAggregator(p))
	if err := srv.Close(); err != nil {
		t.Fatalf("close before listen: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("listen after close: err %v, want net.ErrClosed", err)
	}
}

// TestServeTwiceFails: one server owns one listener.
func TestServeTwiceFails(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(highdim.NewAggregator(p))
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("second Listen on one server must fail")
	}
}

// TestOversizedSnapshotRejectedAtSender: a snapshot the peer's reader
// would refuse must fail with a clear error at the write side, not an
// opaque connection teardown.
func TestOversizedSnapshotRejectedAtSender(t *testing.T) {
	var buf bytes.Buffer
	err := writeSnapshotBody(&buf, est.Snapshot{
		Kind: "mean", Dims: maxPairs + 1,
		Sums: make([]float64, 1), Counts: make([]int64, 1),
	})
	if err == nil {
		t.Fatal("oversized snapshot must be refused at the sender")
	}
}
