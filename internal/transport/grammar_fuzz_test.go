package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"github.com/hdr4me/hdr4me/internal/epoch"
	"github.com/hdr4me/hdr4me/internal/est"
	"github.com/hdr4me/hdr4me/internal/highdim"
	"github.com/hdr4me/hdr4me/internal/ldp"
)

// fuzzRingFactory builds continual (epoch-ring) mean estimators without
// a testing.T, so the fuzz target can rebuild a registry per run.
func fuzzRingFactory() est.Factory {
	mk := func(spec est.QuerySpec) (est.Estimator, error) {
		p, err := highdim.NewProtocol(ldp.Piecewise{}, spec.Eps, spec.D, spec.M)
		if err != nil {
			return nil, err
		}
		return highdim.NewAggregator(p), nil
	}
	return func(spec est.QuerySpec) (est.Estimator, error) {
		inner, err := mk(spec)
		if err != nil {
			return nil, err
		}
		scratch, err := mk(spec)
		if err != nil {
			return nil, err
		}
		return epoch.New(inner, scratch, epoch.Config{})
	}
}

func fuzzRegistry() *est.Registry {
	reg := est.NewRegistry(fuzzRingFactory(), nil)
	if _, err := reg.Open(est.QuerySpec{Name: est.DefaultName, Kind: est.KindMean, Eps: 1, D: 2}); err != nil {
		panic(err)
	}
	return reg
}

// FuzzFrameExchange feeds whole client→server byte streams to a live
// serveConn over an in-memory pipe: the fuzzer owns the full wire
// grammar, not one codec at a time. The seed corpus holds one valid
// exchange per frame type, each frame constant named explicitly — the
// wireframe analyzer checks that every declared frame byte appears
// here, so a frame cannot ship fuzz-blind. The target asserts only that
// the server neither panics nor hangs on any mutation: body-length
// confusion, truncated frames, and route/frame interleavings all land
// on the same reject-and-drain paths the framedrain analyzer guards.
func FuzzFrameExchange(f *testing.F) {
	rep := rep2(0.5, -0.5)
	repFrame := appendReport(nil, rep)
	gen := fuzzRegistry().Get(est.DefaultName).Gen()
	snap := func() est.Snapshot {
		reg := fuzzRegistry()
		q := reg.Get(est.DefaultName)
		_ = q.AddReport(rep)
		return q.Estimator().Snapshot()
	}()

	seed := func(build func(b *bytes.Buffer)) {
		var b bytes.Buffer
		build(&b)
		f.Add(b.Bytes())
	}
	u32 := func(b *bytes.Buffer, v uint32) {
		var x [4]byte
		binary.BigEndian.PutUint32(x[:], v)
		b.Write(x[:])
	}
	u64 := func(b *bytes.Buffer, v uint64) {
		var x [8]byte
		binary.BigEndian.PutUint64(x[:], v)
		b.Write(x[:])
	}

	seed(func(b *bytes.Buffer) { b.WriteByte(frameReport); b.Write(repFrame[1:]) })
	seed(func(b *bytes.Buffer) {
		b.WriteByte(frameVecReport)
		b.Write(appendVecReport(nil, est.Report{Values: []float64{0.5, -0.5}})[1:])
	})
	seed(func(b *bytes.Buffer) { b.WriteByte(frameBatch); u32(b, 1); b.Write(repFrame) })
	seed(func(b *bytes.Buffer) { b.WriteByte(frameEstimate) })
	seed(func(b *bytes.Buffer) { b.WriteByte(frameCounts) })
	seed(func(b *bytes.Buffer) { b.WriteByte(frameEnhanced) })
	seed(func(b *bytes.Buffer) { b.WriteByte(frameSnapshot) })
	seed(func(b *bytes.Buffer) { b.WriteByte(frameMerge); _ = EncodeSnapshot(b, snap) })
	seed(func(b *bytes.Buffer) {
		b.WriteByte(frameOpenQuery)
		_ = EncodeQuerySpec(b, est.QuerySpec{Name: "opened", Kind: est.KindMean, Eps: 0.5, D: 2})
	})
	seed(func(b *bytes.Buffer) {
		b.WriteByte(frameSelect)
		_ = writeString(b, est.DefaultName, maxNameLen)
		b.WriteByte(frameEstimate)
	})
	seed(func(b *bytes.Buffer) { b.WriteByte(frameCheckpoint) })
	seed(func(b *bytes.Buffer) { b.WriteByte(frameEpoch); u64(b, 0); b.Write(repFrame) })
	seed(func(b *bytes.Buffer) { b.WriteByte(frameWindow); u32(b, 1) })
	seed(func(b *bytes.Buffer) { b.WriteByte(frameDecay); u64(b, math.Float64bits(0.5)) })
	seed(func(b *bytes.Buffer) { b.WriteByte(frameRotate) })
	seed(func(b *bytes.Buffer) {
		b.WriteByte(frameSelectGen)
		_ = writeString(b, est.DefaultName, maxNameLen)
		u64(b, gen)
		b.WriteByte(frameEstimate)
	})
	seed(func(b *bytes.Buffer) {
		b.WriteByte(frameQueryInfo)
		_ = writeString(b, est.DefaultName, maxNameLen)
	})
	// HELLO with the open-a-new-session sentinel token, then a sequenced
	// batch: the session handshake and the (session, sequence) batch
	// grammar both face the fuzzer.
	seed(func(b *bytes.Buffer) { b.WriteByte(frameHello); u64(b, 0) })
	seed(func(b *bytes.Buffer) {
		b.WriteByte(frameHello)
		u64(b, 0)
		b.WriteByte(frameBatch)
		u64(b, 1) // session batch sequence
		u32(b, 1)
		b.Write(repFrame)
	})
	// HELLO with an unknown token: the reasoned-rejection path.
	seed(func(b *bytes.Buffer) { b.WriteByte(frameHello); u64(b, 0xdeadbeef) })
	// Versioned HELLO (negotiation ping and session open), and the v2
	// columnar frameCBatch grammar: bare, sequenced under a session, and
	// with a degenerate shape.
	seed(func(b *bytes.Buffer) { _ = writeHelloVersioned(b, 0, ProtocolMax, true) })
	seed(func(b *bytes.Buffer) {
		frame, _ := CodecV2{}.AppendBatch(nil, "", 0, []est.Report{rep})
		b.Write(frame)
	})
	seed(func(b *bytes.Buffer) {
		_ = writeHelloVersioned(b, 0, ProtocolMax, false)
		frame, _ := CodecV2{}.AppendBatch(nil, est.DefaultName, 1, []est.Report{rep, rep})
		b.Write(frame)
	})
	seed(func(b *bytes.Buffer) {
		b.WriteByte(frameCBatch)
		u32(b, 0) // default route
		u64(b, 0) // unsequenced
		u32(b, 0) // zero reports
		u32(b, 0) // zero dims
		u32(b, 0) // zero values
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := NewRegistryServer(fuzzRegistry())
		srv.Logf = func(string, ...any) {}
		srv.OnCheckpoint = func() error { return nil }

		client, server := net.Pipe()
		deadline := time.Now().Add(5 * time.Second)
		_ = client.SetDeadline(deadline)
		_ = server.SetDeadline(deadline)

		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.serveConn(server)
		}()
		go func() {
			_, _ = io.Copy(io.Discard, client)
		}()

		_, _ = client.Write(data)
		_ = client.Close()
		<-done
		_ = server.Close()
	})
}
