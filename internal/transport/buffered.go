package transport

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"github.com/hdr4me/hdr4me/internal/est"
)

// Defaults and bounds for BufferedClient.
const (
	defaultBatchSize = 256
	// defaultMaxPending bounds how many BATCH frames may be in flight
	// before the client drains their acks. Each ack is 5 bytes, so this
	// stays far below any socket buffer — pipelining without the
	// write-write deadlock of never reading.
	defaultMaxPending = 32

	// Retry pacing: shed batches and reconnect attempts back off
	// exponentially from retryBaseDelay to retryMaxDelay, jittered so a
	// fleet of clients does not retry in lockstep.
	retryBaseDelay = 20 * time.Millisecond
	retryMaxDelay  = 1 * time.Second

	// defaultRecoverLimit caps consecutive no-progress recovery rounds
	// (redials, session resumes, shed-retry sweeps) before the client
	// goes sticky.
	defaultRecoverLimit = 8
)

// BufferOption configures a BufferedClient.
type BufferOption func(*BufferedClient)

// WithBatchSize sets how many reports accumulate before Add ships them as
// one BATCH frame (default 256, capped at the wire limit of 65536).
func WithBatchSize(n int) BufferOption {
	return func(b *BufferedClient) {
		if n > 0 {
			b.size = min(n, maxBatch)
		}
	}
}

// WithFlushInterval sets a deadline on buffered reports: d after the first
// report enters an empty buffer, the buffer flushes even if short (default
// 0: only size and explicit Flush trigger shipping).
func WithFlushInterval(d time.Duration) BufferOption {
	return func(b *BufferedClient) { b.interval = d }
}

// WithQueryName routes every shipped batch to the named query of a
// multi-query collector (each BATCH frame is prefixed with a SELECT route
// header). The default, "", targets the collector's default query.
func WithQueryName(name string) BufferOption {
	return func(b *BufferedClient) { b.query = name }
}

// WithReconnect turns on session-based automatic reconnection: the
// client establishes a replay session (HELLO) before its first batch,
// numbers every batch with a session sequence, and — when the transport
// fails mid-pipeline — redials, resumes the session, and replays exactly
// the batches the collector has not applied. The collector dedupes by
// (session, sequence), so a batch whose ack was lost in the disconnect
// is never double-counted and a batch that never arrived is never lost.
//
// redial returns a fresh Client to the same collector. It may be nil
// when the BufferedClient comes from DialBuffered, which then redials
// the original address; with NewBufferedClient a nil redial makes any
// transport failure sticky, exactly as without this option.
func WithReconnect(redial func() (*Client, error)) BufferOption {
	return func(b *BufferedClient) {
		b.reconnect = true
		b.redial = redial
	}
}

// WithReconnectLimit caps consecutive failed recovery attempts — redials,
// session resumes, shed-retry rounds — before the client gives up and
// goes sticky (default 8). Progress (any batch settled) resets the
// count.
func WithReconnectLimit(n int) BufferOption {
	return func(b *BufferedClient) {
		if n > 0 {
			b.recoverLimit = n
		}
	}
}

// WithClientOptions forwards options to the underlying Client — most
// usefully WithProtocolVersion, to pin the buffered pipeline's wire
// protocol. With DialBuffered the options also apply to every reconnect
// redial.
func WithClientOptions(opts ...ClientOption) BufferOption {
	return func(b *BufferedClient) {
		b.clientOpts = append(b.clientOpts, opts...)
		if b.c != nil {
			for _, o := range opts {
				o(b.c)
			}
		}
	}
}

// pendingBatch is one shipped-but-unsettled batch frame. It keeps the
// frame's exact encoded bytes (pooled) until the collector settles it,
// so a disconnect or a retryable NACK re-ships byte-identical wire data
// under the same session sequence — replay never re-encodes, so it can
// never drift from what was originally acknowledged-or-lost. The bytes
// keep their original protocol version even if a reconnect renegotiates:
// both grammars are always accepted server-side.
type pendingBatch struct {
	seq         uint64  // session sequence; 0 outside reconnect mode
	n           int     // report count, for ack sanity checks
	enc         *[]byte // pooled encoded frame, released on settle
	needsResend bool    // shed (NACKed retryable) or replayed: no ack outstanding
	resolved    bool    // settled this drain pass; compacted out
}

// BufferedClient batches report submission over one Client: Add buffers
// reports and ships a BATCH frame whenever the buffer reaches the batch
// size (or the flush interval elapses), pipelining up to a bounded number
// of un-acked batches before draining their acknowledgements. Flush ships
// and drains everything; Close flushes and closes the connection.
//
// Failure handling: a batch the collector rejects outright (ackErr —
// e.g. an unknown query) is counted in Rejected and does not poison the
// pipeline; a batch the collector sheds under overload is retried with
// jittered backoff; and with WithReconnect a broken connection is
// redialed and every unapplied batch replayed exactly once. Only
// unrecoverable failures are sticky.
//
// The BufferedClient owns the Client's connection while reports or acks
// are outstanding: query methods on the underlying Client (Estimate,
// Counts, ...) may only be interleaved after a successful Flush.
// BufferedClient methods themselves are safe for concurrent use.
type BufferedClient struct {
	c            *Client
	size         int
	interval     time.Duration
	query        string
	reconnect    bool
	redial       func() (*Client, error)
	recoverLimit int
	clientOpts   []ClientOption

	mu sync.Mutex
	// Staging: while every buffered report has the same shape the batch
	// accumulates directly as columns (dims and values copied row-major
	// into colDims/colVals), so a v2 ship is a straight CBATCH build with
	// no per-report encoding work. The first differently-shaped report
	// spills the columns into buf as rows and the batch continues ragged.
	buf        []est.Report // row-staged reports (ragged batches only)
	colN       int          // reports staged columnar
	colND      int          // dims per columnar report
	colNV      int          // values per columnar report
	colDims    []uint32     // colN×colND dims, row-major
	colVals    []float64    // colN×colNV values, row-major
	repScratch []est.Report // transient row views for the v1 encoder
	pending    []*pendingBatch
	token      uint64
	nextSeq    uint64
	sent       int64
	accepted   int64
	rejected   int64
	reconnects int64
	replayed   int64
	timer      *time.Timer
	err        error // first unrecoverable error, sticky
	closed     bool
}

// NewBufferedClient wraps an established Client in an auto-batching
// submitter.
func NewBufferedClient(c *Client, opts ...BufferOption) *BufferedClient {
	b := &BufferedClient{c: c, size: defaultBatchSize, recoverLimit: defaultRecoverLimit}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// DialBuffered connects to a collector at addr and wraps the connection in
// a BufferedClient. With WithReconnect(nil), recovery redials addr.
// Options from WithClientOptions apply to the dial and to every redial.
func DialBuffered(addr string, opts ...BufferOption) (*BufferedClient, error) {
	b := &BufferedClient{size: defaultBatchSize, recoverLimit: defaultRecoverLimit}
	for _, opt := range opts {
		opt(b)
	}
	c, err := Dial(addr, b.clientOpts...)
	if err != nil {
		return nil, err
	}
	b.c = c
	if b.reconnect && b.redial == nil {
		b.redial = func() (*Client, error) { return Dial(addr, b.clientOpts...) }
	}
	return b, nil
}

// Add buffers one report, shipping a batch frame when the buffer fills.
// While the batch stays rectangular the report's dims and values are
// copied into the columnar staging area (the caller may reuse its
// slices); a shape break spills to row staging, which retains the
// report's slices until the batch ships. The returned error is sticky:
// once the pipeline fails unrecoverably, every subsequent Add reports it.
func (b *BufferedClient) Add(rep est.Report) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("transport: buffered client is closed")
	}
	if b.err != nil {
		return b.err
	}
	if len(b.buf) == 0 && (b.colN == 0 || (len(rep.Dims) == b.colND && len(rep.Values) == b.colNV)) {
		if b.colN == 0 {
			b.colND, b.colNV = len(rep.Dims), len(rep.Values)
		}
		b.colDims = append(b.colDims, rep.Dims...)
		b.colVals = append(b.colVals, rep.Values...)
		b.colN++
	} else {
		if b.colN > 0 {
			b.spillColumnsLocked()
		}
		b.buf = append(b.buf, rep)
	}
	if n := b.batchLenLocked(); n >= b.size {
		b.shipLocked()
	} else if n == 1 && b.interval > 0 && b.timer == nil {
		b.timer = time.AfterFunc(b.interval, b.timedFlush)
	}
	return b.err
}

// batchLenLocked is the number of reports currently staged, across the
// columnar lanes and the row buffer (at most one of which is non-empty).
// Caller holds b.mu.
func (b *BufferedClient) batchLenLocked() int { return b.colN + len(b.buf) }

// spillColumnsLocked materializes the columnar staging area into row
// reports when a differently-shaped report breaks the rectangle. The
// rows alias the staged arrays, which are then orphaned so the next
// columnar batch cannot clobber the views. Caller holds b.mu.
func (b *BufferedClient) spillColumnsLocked() {
	for i := 0; i < b.colN; i++ {
		b.buf = append(b.buf, est.Report{
			Dims:   b.colDims[i*b.colND : (i+1)*b.colND : (i+1)*b.colND],
			Values: b.colVals[i*b.colNV : (i+1)*b.colNV : (i+1)*b.colNV],
		})
	}
	b.colDims, b.colVals = nil, nil
	b.colN = 0
}

// Flush ships any buffered reports and drains every outstanding
// acknowledgement, so the connection is quiescent afterwards.
func (b *BufferedClient) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.shipLocked()
	b.drainLocked()
	return b.err
}

// Close flushes, closes the underlying connection, and marks the client
// unusable. A flush failure is reported but the connection still closes.
func (b *BufferedClient) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.shipLocked()
	b.drainLocked()
	b.closed = true
	b.stopTimerLocked()
	if cerr := b.c.Close(); b.err == nil {
		b.err = cerr
	}
	return b.err
}

// Sent returns how many reports have been shipped in BATCH frames
// (replays of the same batch are not counted again).
func (b *BufferedClient) Sent() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sent
}

// Accepted returns how many shipped reports the collector has
// acknowledged as accepted so far (drained acks only; Flush to settle).
// After a reconnect it reflects the collector's authoritative cumulative
// count for the session, so acknowledgements lost with the old
// connection are not undercounted.
func (b *BufferedClient) Accepted() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.accepted
}

// Rejected returns how many shipped reports were in batches the
// collector rejected outright (e.g. routed to a query it does not
// have). Rejection settles a batch — it is not retried and not sticky.
func (b *BufferedClient) Rejected() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejected
}

// Reconnects returns how many times the client re-established the
// connection and resumed its replay session.
func (b *BufferedClient) Reconnects() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reconnects
}

// Replayed returns how many pending batches were re-shipped after
// reconnects.
func (b *BufferedClient) Replayed() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.replayed
}

// timedFlush is the flush-interval callback.
func (b *BufferedClient) timedFlush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.timer = nil
	if b.closed {
		return
	}
	b.shipLocked()
	b.drainLocked()
}

// helloLocked settles the connection's protocol state before the first
// batch: in reconnect mode it establishes the replay session (the
// versioned HELLO negotiates the protocol in the same exchange);
// otherwise it negotiates only when the client is pinned to v2 —
// exactly Client.SendBatch's rule, so an un-negotiated sessionless
// pipeline stays on the v1 grammar. Caller holds b.mu.
func (b *BufferedClient) helloLocked() error {
	if !b.reconnect {
		return b.c.maybeNegotiate()
	}
	if b.token != 0 {
		return nil
	}
	info, err := b.c.Hello(0)
	if err != nil {
		return err
	}
	b.token = info.Token
	b.nextSeq = 1
	return nil
}

// shipLocked encodes the staged reports as one batch frame and writes it
// without waiting for the ack, draining first if the pipeline is at its
// depth bound. Caller holds b.mu.
func (b *BufferedClient) shipLocked() {
	if b.err != nil || b.batchLenLocked() == 0 {
		return
	}
	b.stopTimerLocked()
	if len(b.pending) >= defaultMaxPending {
		b.drainLocked()
		if b.err != nil {
			return
		}
	}
	if err := b.helloLocked(); err != nil {
		b.recoverLocked(err)
		if b.err != nil {
			return
		}
	}
	pb := &pendingBatch{n: b.batchLenLocked()}
	if b.reconnect {
		pb.seq = b.nextSeq
		b.nextSeq++
	}
	if err := b.encodePendingLocked(pb); err != nil {
		// Encode failures are configuration errors (oversize batch, bad
		// query name), not transport faults: sticky, nothing on the wire.
		b.err = err
		return
	}
	b.resetStagingLocked()
	b.pending = append(b.pending, pb)
	b.sent += int64(pb.n)
	if err := b.shipOneLocked(pb); err != nil {
		pb.needsResend = true
		b.recoverLocked(err)
		if b.err == nil {
			// Recovery re-shipped under new sequencing state; settle the
			// pipeline before accepting more pipelined ships, so batches
			// stay in order on the wire.
			b.drainLocked()
		}
	}
}

// encodePendingLocked encodes the staged batch into pb.enc with the
// connection's negotiated codec. A columnar-staged batch on a v2
// connection builds the CBATCH frame straight from the columns, with no
// per-report work; on v1 it is encoded through transient row views.
// Caller holds b.mu.
func (b *BufferedClient) encodePendingLocked(pb *pendingBatch) error {
	bp := encPool.Get().(*[]byte)
	v2 := b.c.ProtocolVersion() >= ProtocolV2
	var (
		buf []byte
		err error
	)
	switch {
	case b.colN > 0 && v2:
		buf, err = appendCBatchColumns((*bp)[:0], b.query, pb.seq, b.colN, b.colND, b.colNV, b.colDims, b.colVals)
	case b.colN > 0:
		buf, err = CodecV1{}.AppendBatch((*bp)[:0], b.query, pb.seq, b.colReportsLocked())
	case v2:
		buf, err = CodecV2{}.AppendBatch((*bp)[:0], b.query, pb.seq, b.buf)
	default:
		buf, err = CodecV1{}.AppendBatch((*bp)[:0], b.query, pb.seq, b.buf)
	}
	if err != nil {
		putEncBuf(bp)
		return err
	}
	*bp = buf
	pb.enc = bp
	return nil
}

// colReportsLocked builds transient row views over the columnar staging
// area for the v1 encoder; the views are dead once encoding returns.
// Caller holds b.mu.
func (b *BufferedClient) colReportsLocked() []est.Report {
	reps := b.repScratch[:0]
	for i := 0; i < b.colN; i++ {
		reps = append(reps, est.Report{
			Dims:   b.colDims[i*b.colND : (i+1)*b.colND],
			Values: b.colVals[i*b.colNV : (i+1)*b.colNV],
		})
	}
	b.repScratch = reps
	return reps
}

// resetStagingLocked clears the staged batch for reuse after its bytes
// were encoded, bounding retained capacity. Caller holds b.mu.
func (b *BufferedClient) resetStagingLocked() {
	for i := range b.buf {
		b.buf[i] = est.Report{}
	}
	b.buf = b.buf[:0]
	for i := range b.repScratch {
		b.repScratch[i] = est.Report{}
	}
	b.repScratch = b.repScratch[:0]
	b.colN = 0
	if cap(b.colDims) > maxRetainLanes {
		b.colDims = nil
	} else {
		b.colDims = b.colDims[:0]
	}
	if cap(b.colVals) > maxRetainLanes {
		b.colVals = nil
	} else {
		b.colVals = b.colVals[:0]
	}
}

// shipOneLocked writes one pending batch's pre-encoded frame. Caller
// holds b.mu.
func (b *BufferedClient) shipOneLocked(pb *pendingBatch) error {
	b.c.mu.Lock()
	defer b.c.mu.Unlock()
	return b.c.writeEncodedLocked(*pb.enc)
}

// drainLocked settles every outstanding batch: it reads
// acknowledgements, counts accepted and rejected reports, re-ships shed
// batches after a jittered backoff, and — in reconnect mode — recovers
// from transport failures by redialing and replaying. It returns with
// either every batch settled or b.err sticky. Caller holds b.mu.
func (b *BufferedClient) drainLocked() {
	for round := 0; b.err == nil && len(b.pending) > 0; round++ {
		if b.hasResendLocked() {
			if err := b.reshipLocked(); err != nil {
				b.recoverLocked(err)
				continue
			}
		}
		progress, ioErr := b.readAcksLocked()
		if progress {
			round = 0
		}
		if ioErr != nil {
			b.recoverLocked(ioErr)
			continue
		}
		if !b.hasResendLocked() {
			return
		}
		if round >= b.recoverLimit {
			b.err = fmt.Errorf("transport: batches still shed after %d retries: %w", round, ErrOverloaded)
			return
		}
		sleepBackoff(round)
	}
}

// hasResendLocked reports whether any pending batch awaits re-shipping.
// Caller holds b.mu.
func (b *BufferedClient) hasResendLocked() bool {
	for _, pb := range b.pending {
		if pb.needsResend {
			return true
		}
	}
	return false
}

// reshipLocked re-ships every batch marked for resend, in ship order,
// over the current connection — the exact bytes shipped the first time,
// so a replay can never diverge from the original frame. Caller holds
// b.mu.
func (b *BufferedClient) reshipLocked() error {
	b.c.mu.Lock()
	defer b.c.mu.Unlock()
	for _, pb := range b.pending {
		if !pb.needsResend {
			continue
		}
		if err := b.c.writeEncodedLocked(*pb.enc); err != nil {
			return err
		}
		pb.needsResend = false
	}
	return nil
}

// readAcksLocked reads the acknowledgement of every in-flight batch (in
// ship order — the order acks arrive), settling accepted and rejected
// ones and marking shed ones for resend. It returns whether any batch
// settled, plus the transport error that interrupted the pass, if any;
// batches whose acks were not yet read stay pending for recovery.
// Caller holds b.mu.
func (b *BufferedClient) readAcksLocked() (progress bool, ioErr error) {
	b.c.mu.Lock()
	if b.c.timeout > 0 {
		b.c.conn.SetDeadline(time.Now().Add(b.c.timeout))
		defer b.c.conn.SetDeadline(time.Time{})
	}
	for _, pb := range b.pending {
		if pb.needsResend {
			continue
		}
		status, acc, err := b.c.readBatchStatusLocked(pb.n)
		if err != nil {
			ioErr = err
			break
		}
		switch status {
		case ackOK:
			b.accepted += int64(acc)
			pb.resolved = true
			progress = true
		case ackRetry:
			pb.needsResend = true
		default:
			b.rejected += int64(pb.n)
			pb.resolved = true
			progress = true
		}
	}
	b.c.mu.Unlock()
	b.compactPendingLocked()
	return progress, ioErr
}

// compactPendingLocked drops settled batches from the pending list and
// returns their encoded frames to the pool. Caller holds b.mu.
func (b *BufferedClient) compactPendingLocked() {
	keep := b.pending[:0]
	for _, pb := range b.pending {
		if !pb.resolved {
			keep = append(keep, pb)
			continue
		}
		if pb.enc != nil {
			putEncBuf(pb.enc)
			pb.enc = nil
		}
	}
	for i := len(keep); i < len(b.pending); i++ {
		b.pending[i] = nil
	}
	b.pending = keep
}

// recoverLocked re-establishes the pipeline after a transport failure:
// redial, resume the replay session, drop the pending batches the
// collector already applied, reconcile accounting with its authoritative
// accepted count, and mark the rest for replay (the drain loop re-ships
// them in order). Without reconnect mode — or when the collector no
// longer knows the session — the failure is sticky and the un-acked
// pipeline is abandoned: Sent minus Accepted minus Rejected is then the
// number of reports with unknown fate. Caller holds b.mu.
func (b *BufferedClient) recoverLocked(cause error) {
	if !b.reconnect || b.redial == nil {
		b.err = cause
		b.abandonPendingLocked()
		return
	}
	lastErr := cause
	for attempt := 0; attempt < b.recoverLimit; attempt++ {
		sleepBackoff(attempt)
		nc, err := b.redial()
		if err != nil {
			lastErr = err
			continue
		}
		info, herr := nc.Hello(b.token)
		if herr != nil {
			nc.Close()
			if errors.Is(herr, ErrSessionRejected) {
				b.err = herr
				b.abandonPendingLocked()
				return
			}
			lastErr = herr
			continue
		}
		b.c.Close()
		b.c = nc
		b.reconnects++
		b.token = info.Token
		if b.nextSeq == 0 {
			b.nextSeq = 1
		}
		// Drop what the collector proves it applied; its cumulative count
		// also covers acks the dead connection swallowed.
		for _, pb := range b.pending {
			if pb.seq != 0 && pb.seq <= info.LastSeq {
				pb.resolved = true
			} else {
				pb.needsResend = true
				b.replayed++
			}
		}
		b.compactPendingLocked()
		if b.token != 0 {
			b.accepted = int64(info.Accepted)
		}
		return
	}
	b.err = fmt.Errorf("transport: reconnect failed after %d attempts: %w", b.recoverLimit, lastErr)
	b.abandonPendingLocked()
}

// abandonPendingLocked discards the un-settled pipeline on an
// unrecoverable failure; the batches' fate is unknown and the accounting
// deliberately leaves them outside Accepted and Rejected. Caller holds
// b.mu.
func (b *BufferedClient) abandonPendingLocked() {
	for i, pb := range b.pending {
		if pb.enc != nil {
			putEncBuf(pb.enc)
			pb.enc = nil
		}
		b.pending[i] = nil
	}
	b.pending = b.pending[:0]
}

// sleepBackoff pauses before retry attempt (0-based): exponential from
// retryBaseDelay to retryMaxDelay, jittered to ±50% so a fleet of
// recovering clients does not stampede the collector in lockstep.
func sleepBackoff(attempt int) {
	d := retryBaseDelay << min(attempt, 8)
	if d > retryMaxDelay {
		d = retryMaxDelay
	}
	time.Sleep(d/2 + rand.N(d))
}

// stopTimerLocked cancels a pending interval flush. Caller holds b.mu.
func (b *BufferedClient) stopTimerLocked() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
}
