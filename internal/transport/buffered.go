package transport

import (
	"fmt"
	"sync"
	"time"

	"github.com/hdr4me/hdr4me/internal/est"
)

// Defaults and bounds for BufferedClient.
const (
	defaultBatchSize = 256
	// defaultMaxPending bounds how many BATCH frames may be in flight
	// before the client drains their acks. Each ack is 5 bytes, so this
	// stays far below any socket buffer — pipelining without the
	// write-write deadlock of never reading.
	defaultMaxPending = 32
)

// BufferOption configures a BufferedClient.
type BufferOption func(*BufferedClient)

// WithBatchSize sets how many reports accumulate before Add ships them as
// one BATCH frame (default 256, capped at the wire limit of 65536).
func WithBatchSize(n int) BufferOption {
	return func(b *BufferedClient) {
		if n > 0 {
			b.size = min(n, maxBatch)
		}
	}
}

// WithFlushInterval sets a deadline on buffered reports: d after the first
// report enters an empty buffer, the buffer flushes even if short (default
// 0: only size and explicit Flush trigger shipping).
func WithFlushInterval(d time.Duration) BufferOption {
	return func(b *BufferedClient) { b.interval = d }
}

// WithQueryName routes every shipped batch to the named query of a
// multi-query collector (each BATCH frame is prefixed with a SELECT route
// header). The default, "", targets the collector's default query.
func WithQueryName(name string) BufferOption {
	return func(b *BufferedClient) { b.query = name }
}

// BufferedClient batches report submission over one Client: Add buffers
// reports and ships a BATCH frame whenever the buffer reaches the batch
// size (or the flush interval elapses), pipelining up to a bounded number
// of un-acked batches before draining their acknowledgements. Flush ships
// and drains everything; Close flushes and closes the connection.
//
// The BufferedClient owns the Client's connection while reports or acks
// are outstanding: query methods on the underlying Client (Estimate,
// Counts, ...) may only be interleaved after a successful Flush.
// BufferedClient methods themselves are safe for concurrent use.
type BufferedClient struct {
	c        *Client
	size     int
	interval time.Duration
	query    string

	mu       sync.Mutex
	buf      []est.Report
	pending  []int // sent counts of un-acked BATCH frames, in order
	sent     int64
	accepted int64
	timer    *time.Timer
	err      error // first transport error, sticky
	closed   bool
}

// NewBufferedClient wraps an established Client in an auto-batching
// submitter.
func NewBufferedClient(c *Client, opts ...BufferOption) *BufferedClient {
	b := &BufferedClient{c: c, size: defaultBatchSize}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// DialBuffered connects to a collector at addr and wraps the connection in
// a BufferedClient.
func DialBuffered(addr string, opts ...BufferOption) (*BufferedClient, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewBufferedClient(c, opts...), nil
}

// Add buffers one report, shipping a BATCH frame when the buffer fills.
// The returned error is sticky: once a transport exchange fails, every
// subsequent Add reports it.
func (b *BufferedClient) Add(rep est.Report) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("transport: buffered client is closed")
	}
	if b.err != nil {
		return b.err
	}
	b.buf = append(b.buf, rep)
	if len(b.buf) >= b.size {
		b.shipLocked()
	} else if len(b.buf) == 1 && b.interval > 0 && b.timer == nil {
		b.timer = time.AfterFunc(b.interval, b.timedFlush)
	}
	return b.err
}

// Flush ships any buffered reports and drains every outstanding
// acknowledgement, so the connection is quiescent afterwards.
func (b *BufferedClient) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.shipLocked()
	b.drainLocked()
	return b.err
}

// Close flushes, closes the underlying connection, and marks the client
// unusable. A flush failure is reported but the connection still closes.
func (b *BufferedClient) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.shipLocked()
	b.drainLocked()
	b.closed = true
	b.stopTimerLocked()
	if cerr := b.c.Close(); b.err == nil {
		b.err = cerr
	}
	return b.err
}

// Sent returns how many reports have been shipped in BATCH frames.
func (b *BufferedClient) Sent() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sent
}

// Accepted returns how many shipped reports the collector has
// acknowledged as accepted so far (drained acks only; Flush to settle).
func (b *BufferedClient) Accepted() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.accepted
}

// timedFlush is the flush-interval callback.
func (b *BufferedClient) timedFlush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.timer = nil
	if b.closed {
		return
	}
	b.shipLocked()
	b.drainLocked()
}

// shipLocked writes the buffered reports as one BATCH frame without
// waiting for the ack, draining first if the pipeline is at its depth
// bound. Caller holds b.mu.
func (b *BufferedClient) shipLocked() {
	if b.err != nil || len(b.buf) == 0 {
		return
	}
	b.stopTimerLocked()
	if len(b.pending) >= defaultMaxPending {
		b.drainLocked()
		if b.err != nil {
			return
		}
	}
	b.c.mu.Lock()
	n, err := b.c.sendBatchLocked(b.query, b.buf)
	b.c.mu.Unlock()
	if err != nil {
		b.err = err
		return
	}
	b.pending = append(b.pending, n)
	b.sent += int64(n)
	b.buf = b.buf[:0]
}

// drainLocked reads the acknowledgement of every in-flight BATCH frame.
// Caller holds b.mu.
func (b *BufferedClient) drainLocked() {
	if len(b.pending) == 0 {
		return
	}
	b.c.mu.Lock()
	defer b.c.mu.Unlock()
	for _, n := range b.pending {
		if b.err != nil {
			break
		}
		acc, err := b.c.readBatchAckLocked(n)
		if err != nil {
			b.err = err
			break
		}
		b.accepted += int64(acc)
	}
	b.pending = b.pending[:0]
}

// stopTimerLocked cancels a pending interval flush. Caller holds b.mu.
func (b *BufferedClient) stopTimerLocked() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
}
