package transport

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hdr4me/hdr4me/internal/est"
	"github.com/hdr4me/hdr4me/internal/highdim"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/mathx"
)

// meanAgg builds a d-dimensional mean aggregator for routing tests.
func meanAgg(t *testing.T, d int) *highdim.Aggregator {
	t.Helper()
	p, err := highdim.NewProtocol(ldp.Piecewise{}, 1.0, d, d)
	if err != nil {
		t.Fatal(err)
	}
	return highdim.NewAggregator(p)
}

// meanFactory builds mean aggregators from specs (D only).
func meanFactory(t *testing.T) est.Factory {
	t.Helper()
	return func(spec est.QuerySpec) (est.Estimator, error) {
		p, err := highdim.NewProtocol(ldp.Piecewise{}, spec.Eps, spec.D, spec.M)
		if err != nil {
			return nil, err
		}
		return highdim.NewAggregator(p), nil
	}
}

// listenRegistry serves reg on an ephemeral port and returns its address.
func listenRegistry(t *testing.T, reg *est.Registry) string {
	t.Helper()
	srv := NewRegistryServer(reg)
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

func rep2(a, b float64) est.Report {
	return est.Report{Dims: []uint32{0, 1}, Values: []float64{a, b}}
}

func TestQuerySpecWireRoundTrip(t *testing.T) {
	specs := []est.QuerySpec{
		{Name: "temps", Kind: est.KindMean, Mech: "piecewise", Eps: 0.8, D: 16, M: 8},
		{Name: "pets", Kind: est.KindFreq, Mech: "squarewave", Eps: 0.4, Cards: []int{3, 4, 5}, M: 2},
		{Name: "vitals", Kind: est.KindWholeTuple, Eps: 0.5, D: 4, M: 4},
	}
	for _, spec := range specs {
		var buf bytes.Buffer
		if err := WriteOpenQuery(&buf, spec); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		ft, err := readFrameType(&buf)
		if err != nil || ft != frameOpenQuery {
			t.Fatalf("%s: frame type %v, err %v", spec.Name, ft, err)
		}
		got, err := readQuerySpecBody(&buf)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if got.Name != spec.Name || got.Kind != spec.Kind || got.Mech != spec.Mech ||
			got.Eps != spec.Eps || got.D != spec.D || got.M != spec.M || len(got.Cards) != len(spec.Cards) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, spec)
		}
		for i := range spec.Cards {
			if got.Cards[i] != spec.Cards[i] {
				t.Fatalf("cards mismatch: %v vs %v", got.Cards, spec.Cards)
			}
		}
	}
}

func TestQuerySpecRejectsHostileCards(t *testing.T) {
	// A tiny OPENQUERY frame must not be able to force a huge collector
	// allocation: per-card values and the flattened total are bounded.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 1, 'x'}) // name "x"
	buf.Write([]byte{0, 0, 0, 0})      // kind ""
	buf.Write([]byte{0, 0, 0, 0})      // mech ""
	buf.Write(make([]byte, 8))         // eps
	buf.Write(make([]byte, 8))         // d, m
	buf.Write([]byte{0, 0, 0, 1})      // 1 card...
	buf.Write([]byte{0x7F, 0xFF, 0xFF, 0xFF})
	if _, err := readQuerySpecBody(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "card") {
		t.Fatalf("hostile card value = %v, want card-limit rejection", err)
	}
	// Many small cards overflowing the total entry bound are rejected too.
	var buf2 bytes.Buffer
	buf2.Write([]byte{0, 0, 0, 1, 'x'})
	buf2.Write([]byte{0, 0, 0, 0})
	buf2.Write([]byte{0, 0, 0, 0})
	buf2.Write(make([]byte, 16))
	buf2.Write([]byte{0, 0, 0, 4}) // 4 cards × 2^19 = 2^21 > maxPairs
	for i := 0; i < 4; i++ {
		buf2.Write([]byte{0, 8, 0, 0})
	}
	if _, err := readQuerySpecBody(bytes.NewReader(buf2.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "total entries") {
		t.Fatalf("hostile card total = %v, want total-entries rejection", err)
	}
}

func TestRoutedReportsLandInNamedQueries(t *testing.T) {
	reg := est.NewRegistry(meanFactory(t), nil)
	if _, err := reg.Attach(est.QuerySpec{Name: est.DefaultName}, meanAgg(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open(est.QuerySpec{Name: "alpha", Kind: est.KindMean, Eps: 1, D: 2}); err != nil {
		t.Fatal(err)
	}
	addr := listenRegistry(t, reg)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Legacy un-routed send lands in the default query.
	if err := cl.Send(rep2(0.5, -0.5)); err != nil {
		t.Fatal(err)
	}
	// Routed send lands in alpha only.
	qa := cl.Query("alpha")
	if err := qa.Send(rep2(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := qa.Send(rep2(1, 1)); err != nil {
		t.Fatal(err)
	}
	defCounts := reg.Default().Estimator().Counts()
	alphaCounts, err := qa.Counts()
	if err != nil {
		t.Fatal(err)
	}
	if defCounts[0] != 1 || alphaCounts[0] != 2 {
		t.Fatalf("counts: default %v, alpha %v; want 1 and 2", defCounts, alphaCounts)
	}
	// The routed estimate differs from the default's.
	ae, err := qa.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	de, err := cl.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if ae[0] == de[0] {
		t.Fatalf("routed and default estimates identical: %v vs %v", ae, de)
	}
}

func TestRouteToUnknownQueryKeepsConnectionUsable(t *testing.T) {
	reg := est.NewRegistry(nil, nil)
	if _, err := reg.Attach(est.QuerySpec{Name: est.DefaultName}, meanAgg(t, 2)); err != nil {
		t.Fatal(err)
	}
	addr := listenRegistry(t, reg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ghost := cl.Query("ghost")
	if err := ghost.Send(rep2(0.1, 0.2)); err == nil {
		t.Fatal("send to unknown query succeeded")
	}
	if _, err := ghost.Estimate(); err == nil {
		t.Fatal("estimate of unknown query succeeded")
	}
	if _, err := ghost.SendBatch([]est.Report{rep2(0.1, 0.2)}); err == nil {
		t.Fatal("batch to unknown query succeeded")
	}
	if _, err := ghost.PullSnapshot(); err == nil {
		t.Fatal("snapshot of unknown query succeeded")
	}
	if err := ghost.PushSnapshot(est.Snapshot{Kind: highdim.KindMean, Dims: 2,
		Sums: []float64{0, 0}, Counts: []int64{0, 0}}); err == nil {
		t.Fatal("merge into unknown query succeeded")
	}
	// After five failed routes the same connection still serves the
	// default query — no desync, no teardown.
	if err := cl.Send(rep2(0.3, 0.4)); err != nil {
		t.Fatalf("connection unusable after bad routes: %v", err)
	}
	if got := reg.Default().Estimator().Counts()[0]; got != 1 {
		t.Fatalf("default query count = %d, want 1", got)
	}
}

func TestOpenQueryOverWire(t *testing.T) {
	acct := &countingAdmission{limit: 2}
	reg := est.NewRegistry(meanFactory(t), acct)
	addr := listenRegistry(t, reg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	q, err := cl.Open(est.QuerySpec{Name: "remote", Kind: est.KindMean, Eps: 1, D: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := q.Send(rep2(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Get("remote").Estimator().Counts()[0]; got != 1 {
		t.Fatalf("remote query count = %d, want 1", got)
	}
	// Duplicate name: the rejection carries the server's reason.
	if _, err := cl.Open(est.QuerySpec{Name: "remote", Kind: est.KindMean, Eps: 1, D: 2}); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate Open = %v, want 'already exists'", err)
	}
	// Admission limit reached: rejection also carries the reason.
	if _, err := cl.Open(est.QuerySpec{Name: "third", Kind: est.KindMean, Eps: 1, D: 2}); err != nil {
		t.Fatalf("second Open: %v", err)
	}
	if _, err := cl.Open(est.QuerySpec{Name: "fourth", Kind: est.KindMean, Eps: 1, D: 2}); err == nil ||
		!strings.Contains(err.Error(), "limit") {
		t.Fatalf("over-limit Open = %v, want limit rejection", err)
	}
	// The connection survives every rejection.
	if _, err := q.Counts(); err != nil {
		t.Fatalf("connection unusable after rejected opens: %v", err)
	}
}

// countingAdmission admits up to limit queries.
type countingAdmission struct {
	mu    sync.Mutex
	n     int
	limit int
}

func (a *countingAdmission) Admit(spec est.QuerySpec) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n >= a.limit {
		return &limitErr{}
	}
	a.n++
	return nil
}
func (a *countingAdmission) Release(est.QuerySpec) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n--
}

type limitErr struct{}

func (*limitErr) Error() string { return "admission: query limit reached" }

func TestSealedQueryRejectsReportsServesEstimates(t *testing.T) {
	reg := est.NewRegistry(meanFactory(t), nil)
	if _, err := reg.Open(est.QuerySpec{Name: "metrics", Kind: est.KindMean, Eps: 1, D: 2}); err != nil {
		t.Fatal(err)
	}
	addr := listenRegistry(t, reg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	q := cl.Query("metrics")
	if err := q.Send(rep2(0.5, -0.5)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Seal("metrics"); err != nil {
		t.Fatal(err)
	}
	if err := q.Send(rep2(0.5, -0.5)); err == nil {
		t.Fatal("send after seal succeeded over the wire")
	}
	if acc, err := q.SendBatch([]est.Report{rep2(0.1, 0.1)}); err != nil || acc != 0 {
		t.Fatalf("batch after seal: accepted=%d err=%v, want 0 accepted", acc, err)
	}
	counts, err := q.Counts()
	if err != nil {
		t.Fatalf("sealed query stopped serving counts: %v", err)
	}
	if counts[0] != 1 {
		t.Fatalf("sealed count = %d, want 1 (post-seal sends must not land)", counts[0])
	}
	if _, err := q.Estimate(); err != nil {
		t.Fatalf("sealed query stopped serving estimates: %v", err)
	}
	if _, err := q.PullSnapshot(); err != nil {
		t.Fatalf("sealed query stopped serving snapshots: %v", err)
	}
}

func TestBufferedClientRoutesToNamedQuery(t *testing.T) {
	reg := est.NewRegistry(meanFactory(t), nil)
	if _, err := reg.Attach(est.QuerySpec{Name: est.DefaultName}, meanAgg(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open(est.QuerySpec{Name: "alpha", Kind: est.KindMean, Eps: 1, D: 2}); err != nil {
		t.Fatal(err)
	}
	addr := listenRegistry(t, reg)
	bc, err := DialBuffered(addr, WithBatchSize(8), WithQueryName("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := bc.Add(rep2(0.5, -0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if got := bc.Accepted(); got != n {
		t.Fatalf("accepted = %d, want %d", got, n)
	}
	if got := reg.Get("alpha").Estimator().Counts()[0]; got != n {
		t.Fatalf("alpha count = %d, want %d", got, n)
	}
	if got := reg.Default().Estimator().Counts()[0]; got != 0 {
		t.Fatalf("default query caught %d routed reports", got)
	}
}

func TestSnapshotContextTimesOutOnUnresponsivePeer(t *testing.T) {
	// A listener that accepts and then never replies: the legacy
	// PullSnapshot would block forever here.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			_ = conn // swallow everything, reply with nothing
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	cl, err := DialContext(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	if _, err := cl.PullSnapshotContext(ctx); err == nil {
		t.Fatal("pull from unresponsive peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pull took %v, deadline did not apply", elapsed)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	cl2, err := DialContext(ctx2, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	start = time.Now()
	if err := cl2.PushSnapshotContext(ctx2, est.Snapshot{Kind: "mean", Dims: 1,
		Sums: []float64{0}, Counts: []int64{0}}); err == nil {
		t.Fatal("push to unresponsive peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("push took %v, deadline did not apply", elapsed)
	}
}

func TestSnapshotContextCancellationUnblocks(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			_ = conn
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	cl, err := DialContext(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := cl.PullSnapshotContext(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled pull succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock the exchange")
	}
}

// TestRoutedExchangeDeterminism routes interleaved traffic from many
// goroutines over ONE shared connection to two queries and checks nothing
// desyncs: every ack matches its exchange under the race detector.
func TestRoutedConcurrentSharedConnection(t *testing.T) {
	reg := est.NewRegistry(meanFactory(t), nil)
	for _, name := range []string{"a", "b"} {
		if _, err := reg.Open(est.QuerySpec{Name: name, Kind: est.KindMean, Eps: 1, D: 2}); err != nil {
			t.Fatal(err)
		}
	}
	addr := listenRegistry(t, reg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const perWorker = 40
	var wg sync.WaitGroup
	rng := mathx.NewRNG(7)
	for w := 0; w < 4; w++ {
		name := []string{"a", "b"}[w%2]
		wrng := rng.Child(uint64(w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := cl.Query(name)
			for i := 0; i < perWorker; i++ {
				if err := q.Send(rep2(wrng.Float64()-0.5, wrng.Float64()-0.5)); err != nil {
					t.Errorf("query %s: %v", name, err)
					return
				}
				if i%16 == 0 {
					if _, err := q.Estimate(); err != nil {
						t.Errorf("query %s estimate: %v", name, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, name := range []string{"a", "b"} {
		if got := reg.Get(name).Estimator().Counts()[0]; got != 2*perWorker {
			t.Fatalf("query %s count = %d, want %d", name, got, 2*perWorker)
		}
	}
}
