package transport

import (
	"bufio"
	"net"
	"testing"

	"github.com/hdr4me/hdr4me/internal/highdim"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/transport/faultconn"
)

// ackThenDie is a minimal wire-speaking stub collector: it reads
// totalBatches BATCH frames, acks only the first ackBatches with full
// acceptance, then closes — the deterministic mid-pipeline failure
// satellite S1 needs. Consuming every shipped frame before closing
// keeps the close a clean FIN (no RST racing the buffered acks), so the
// client reads exactly ackBatches acknowledgements and then EOF.
func ackThenDie(t *testing.T, ackBatches, totalBatches int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		sc := &decodeScratch{}
		for seen := 0; seen < totalBatches; seen++ {
			ft, err := readFrameType(br)
			if err != nil || ft != frameBatch {
				return
			}
			cnt, err := sc.readUint32(br)
			if err != nil {
				return
			}
			if err := discardBatchReports(br, sc, cnt); err != nil {
				return
			}
			if seen < ackBatches {
				if err := writeBatchReply(bw, ackOK, cnt); err != nil {
					return
				}
				if err := bw.Flush(); err != nil {
					return
				}
			}
		}
		// Die with the later batches consumed but never settled.
	}()
	return ln.Addr().String()
}

// TestBufferedClientAccountingAfterMidPipelineFailure (satellite S1):
// when the connection dies with batches in flight, Sent and Accepted
// must reflect exactly what was shipped and what the collector really
// acked — no wiping the ledger, no counting unacked batches either way.
func TestBufferedClientAccountingAfterMidPipelineFailure(t *testing.T) {
	const (
		batch    = 10
		nBatches = 5
		acked    = 2
	)
	addr := ackThenDie(t, acked, nBatches)
	bc, err := DialBuffered(addr, WithBatchSize(batch))
	if err != nil {
		t.Fatal(err)
	}
	// Ship 5 batches; the stub acks 2 and dies. No reconnect mode: the
	// failure must go sticky with honest books.
	for i, rep := range testReports(batch * nBatches) {
		if err := bc.Add(rep); err != nil {
			break // sticky error may surface before all adds, that's fine
		}
		_ = i
	}
	if err := bc.Flush(); err == nil {
		t.Fatal("Flush succeeded; want the mid-pipeline failure surfaced")
	}
	if got := bc.Sent(); got != batch*nBatches {
		t.Fatalf("Sent() = %d; want %d (everything shipped)", got, batch*nBatches)
	}
	if got := bc.Accepted(); got != batch*acked {
		t.Fatalf("Accepted() = %d; want %d — exactly the batches the collector acked", got, batch*acked)
	}
	if got := bc.Rejected(); got != 0 {
		t.Fatalf("Rejected() = %d; want 0 (nothing was rejected, it was lost)", got)
	}
	// The error is sticky and consistent.
	flushErr := bc.Flush()
	if addErr := bc.Add(testReports(1)[0]); addErr == nil || flushErr == nil {
		t.Fatal("sticky failure must surface on every later Add and Flush")
	}
}

// TestBufferedClientRejectedBatchIsNotSticky (satellite S1): a batch
// the collector rejects outright — here, routed to a query that does
// not exist — settles as Rejected and the pipeline keeps flowing; only
// transport failures are sticky.
func TestBufferedClientRejectedBatchIsNotSticky(t *testing.T) {
	proto, err := highdim.NewProtocol(ldp.Laplace{}, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, proto)

	bc, err := DialBuffered(addr, WithBatchSize(10), WithQueryName("no-such-query"))
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	for _, rep := range testReports(30) {
		if err := bc.Add(rep); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := bc.Flush(); err != nil {
		t.Fatalf("Flush = %v; rejection must not be sticky", err)
	}
	if got := bc.Rejected(); got != 30 {
		t.Fatalf("Rejected() = %d; want 30", got)
	}
	if got := bc.Accepted(); got != 0 {
		t.Fatalf("Accepted() = %d; want 0", got)
	}
	// The same connection still serves later traffic.
	if _, err := bc.c.Counts(); err != nil {
		t.Fatalf("connection unusable after rejected batches: %v", err)
	}
}

// TestBufferedClientFaultconnRegression pins the S1 fix against the
// fault injector: an injected read cut mid-drain must leave Accepted at
// exactly the acks read before the cut, with the failure sticky.
func TestBufferedClientFaultconnRegression(t *testing.T) {
	proto, err := highdim.NewProtocol(ldp.Laplace{}, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, proto)

	raw, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := faultconn.Wrap(raw.conn)
	bc := NewBufferedClient(NewClient(fc), WithBatchSize(10))

	for _, rep := range testReports(50) {
		if err := bc.Add(rep); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	// Cut the socket before any ack can be read: every batch is in
	// flight, none settled.
	fc.Cut()
	if err := bc.Flush(); err == nil {
		t.Fatal("Flush over a cut connection succeeded")
	}
	if got := bc.Sent(); got != 50 {
		t.Fatalf("Sent() = %d; want 50", got)
	}
	if got := bc.Accepted(); got != 0 {
		t.Fatalf("Accepted() = %d; want 0 — no ack was readable after the cut", got)
	}
	if st := fc.Stats(); st.Faulted == 0 {
		t.Fatalf("fault injector stats = %+v; want Faulted > 0", st)
	}
}
