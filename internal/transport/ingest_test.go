package transport

import (
	"bytes"
	"testing"

	"github.com/hdr4me/hdr4me/internal/est"
	"github.com/hdr4me/hdr4me/internal/highdim"
	"github.com/hdr4me/hdr4me/internal/ldp"
)

// TestBatchWithEstimatorRejectedReportNACKsWithoutDesync: a batch whose
// embedded frame is wire-decodable but malformed for the estimator must
// be acknowledged with the bad report counted out of accepted — and the
// connection must stay fully usable afterwards.
func TestBatchWithEstimatorRejectedReportNACKsWithoutDesync(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, p)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	batch := []est.Report{
		{Dims: []uint32{0, 1}, Values: []float64{0.5, -0.5}},
		{Dims: []uint32{1, 0}, Values: []float64{1, 1}}, // unsorted dims: estimator rejects
		{Dims: []uint32{2, 3}, Values: []float64{0.25, -0.25}},
	}
	accepted, err := cl.SendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 2 {
		t.Fatalf("accepted %d, want 2 (malformed report skipped, not fatal)", accepted)
	}

	// Not desynced: the same connection keeps serving batches and queries.
	if accepted, err = cl.SendBatch(batch[:1]); err != nil || accepted != 1 {
		t.Fatalf("follow-up batch: accepted %d, err %v", accepted, err)
	}
	counts, err := cl.Counts()
	if err != nil {
		t.Fatalf("connection desynced after mid-batch rejection: %v", err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 6 { // 3 accepted reports × m=2 pairs
		t.Fatalf("collector saw %d pairs, want 6", total)
	}
}

// TestBatchWithUndecodableEmbeddedFrameKillsConnection: an embedded
// frame type the decoder cannot size desyncs the stream by definition,
// so the server must drop the connection rather than guess.
func TestBatchWithUndecodableEmbeddedFrameKillsConnection(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startTestServer(t, p)
	srv.Logf = func(string, ...any) {}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var buf bytes.Buffer
	if err := WriteBatch(&buf, []est.Report{{Dims: []uint32{0}, Values: []float64{0.5}}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5] = 0x7F // corrupt the embedded frame's type byte
	cl.mu.Lock()
	_, werr := cl.bw.Write(raw)
	if werr == nil {
		werr = cl.bw.Flush()
	}
	cl.mu.Unlock()
	if werr != nil {
		t.Fatal(werr)
	}
	if _, err := cl.Counts(); err == nil {
		t.Fatal("connection must be torn down after an undecodable embedded frame")
	}
}

// TestBatchLargerThanDecodeChunk: batches beyond the pooled decoder's
// chunk bounds accumulate across several AddReports calls with an exact
// total, including rejects falling in different chunks.
func TestBatchLargerThanDecodeChunk(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, p)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	n := 3*batchChunkReports + 117
	rejects := 0
	batch := make([]est.Report, n)
	for i := range batch {
		if i%500 == 250 {
			batch[i] = est.Report{Dims: []uint32{99}, Values: []float64{1}} // out of range
			rejects++
			continue
		}
		batch[i] = est.Report{Dims: []uint32{uint32(i % 8)}, Values: []float64{0.5}}
	}
	accepted, err := cl.SendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != n-rejects {
		t.Fatalf("accepted %d, want %d", accepted, n-rejects)
	}
	counts, err := cl.Counts()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != int64(n-rejects) {
		t.Fatalf("collector saw %d pairs, want %d", total, n-rejects)
	}
}

// TestDecodeScratchRetentionCap: one oversized (protocol-legal) report
// must not pin its arenas for the connection's lifetime — reset drops
// outlier capacities but keeps normal working sizes.
func TestDecodeScratchRetentionCap(t *testing.T) {
	sc := &decodeScratch{}
	sc.bytes(maxRetainBytes + 1)
	sc.growDims(maxRetainLanes + 1)
	sc.growVals(maxRetainLanes + 1)
	sc.reset()
	if cap(sc.b) != 0 || cap(sc.dims) != 0 || cap(sc.vals) != 0 {
		t.Fatalf("oversized arenas retained: b=%d dims=%d vals=%d", cap(sc.b), cap(sc.dims), cap(sc.vals))
	}
	sc.bytes(4096)
	sc.growDims(512)
	sc.growVals(512)
	sc.reset()
	if cap(sc.b) < 4096 || cap(sc.dims) < 512 || cap(sc.vals) < 512 {
		t.Fatalf("working-size arenas dropped: b=%d dims=%d vals=%d", cap(sc.b), cap(sc.dims), cap(sc.vals))
	}
}

// TestLegacyIngestMatchesStripedIngest: the A/B baseline path must stay
// behaviorally identical to the pooled striped path — same accepted
// counts, same counts, equal estimates.
func TestLegacyIngestMatchesStripedIngest(t *testing.T) {
	p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]est.Report, 300)
	for i := range batch {
		d := uint32(i % 5)
		batch[i] = est.Report{Dims: []uint32{d, d + 1}, Values: []float64{0.5, -0.25}}
	}
	batch[7] = est.Report{Dims: []uint32{6, 7}, Values: []float64{1, 1}} // out of range

	run := func(legacy bool) ([]int64, []float64, int) {
		srv := NewServer(highdim.NewAggregator(p))
		srv.LegacyIngest = legacy
		srv.Logf = func(string, ...any) {}
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		cl, err := Dial(bound.String())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		accepted, err := cl.SendBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := cl.Counts()
		if err != nil {
			t.Fatal(err)
		}
		estimate, err := cl.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return counts, estimate, accepted
	}

	lc, le, la := run(true)
	sc, se, sa := run(false)
	if la != sa || la != len(batch)-1 {
		t.Fatalf("accepted legacy %d, striped %d, want %d", la, sa, len(batch)-1)
	}
	for j := range lc {
		if lc[j] != sc[j] {
			t.Fatalf("dim %d: legacy count %d != striped %d", j, lc[j], sc[j])
		}
		if le[j] != se[j] {
			t.Fatalf("dim %d: legacy estimate %v != striped %v", j, le[j], se[j])
		}
	}
}
