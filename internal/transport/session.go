package transport

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/hdr4me/hdr4me/internal/est"
)

// sessionTTLDefault is how long a detached replay session (its client
// disconnected, not yet resumed) is retained before the lazy sweep drops
// it. Override per server with Server.SessionTTL.
const sessionTTLDefault = 2 * time.Minute

// ackRingSize bounds how many recent per-sequence accepted counts a
// session remembers. A duplicate batch older than the ring is still
// detected (seq <= lastSeq) and acked, just with an accepted count of
// zero — the client's accounting is reconciled by the HELLO reply's
// cumulative total anyway, so the ring only improves per-batch fidelity.
const ackRingSize = 64

// ackRec is one remembered batch outcome: the sequence number and how
// many of its reports the estimator accepted.
type ackRec struct {
	seq      uint64
	accepted uint32
}

// Sequence classes for one incoming sequenced batch.
const (
	seqApply = iota // seq == lastSeq+1: the next batch, apply it
	seqDup          // seq <= lastSeq: already applied, ack from the record
	seqGap          // seq > lastSeq+1: an earlier batch was shed, NACK retryable
)

// connSession is the server half of one reconnecting client's
// exactly-once contract: the session token, the highest batch sequence
// number durably applied, and the cumulative accepted-report count the
// HELLO reply reconciles client accounting with. Exactly one connection
// owns a session at a time — a resume displaces (and closes) the
// previous owner, and a displaced connection's in-flight batch aborts at
// commit instead of racing the successor's replay.
type connSession struct {
	token uint64

	mu         sync.Mutex
	conn       net.Conn // owning connection; nil while detached
	lastSeq    uint64   // highest batch sequence applied (sheds never advance it)
	accepted   uint64   // cumulative reports accepted across the session
	acks       [ackRingSize]ackRec
	lastActive time.Time // detach time, for the TTL sweep
}

// state snapshots the fields a HELLO reply carries.
func (ss *connSession) state() helloReply {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return helloReply{Token: ss.token, LastSeq: ss.lastSeq, Accepted: ss.accepted}
}

// seqClass classifies seq against the session's applied prefix. Only the
// owning connection sends batches, so a seqApply answer can only be
// invalidated by a takeover — which commit re-checks under the same lock.
func (ss *connSession) seqClass(seq uint64) int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch {
	case seq == ss.lastSeq+1:
		return seqApply
	case seq <= ss.lastSeq:
		return seqDup
	default:
		return seqGap
	}
}

// dupAck returns the recorded accepted count for an already-applied
// sequence, or zero when the record has rotated out of the ring.
func (ss *connSession) dupAck(seq uint64) uint32 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if rec := ss.acks[seq%ackRingSize]; rec.seq == seq {
		return rec.accepted
	}
	return 0
}

// commit atomically applies one fully decoded sequenced batch: under the
// session lock it re-checks that conn still owns the session and that
// seq is still the next in line, then accumulates the whole slice and
// advances lastSeq. Because decode happened first, a connection dying
// mid-batch applies nothing — there is no partially applied batch for a
// replay to double-count. A non-nil error means the connection lost the
// session to a takeover and must abort without replying.
func (ss *connSession) commit(conn net.Conn, seq uint64, reps []est.Report, add func([]est.Report) (int, error)) (status byte, accepted uint32, err error) {
	return ss.commitApply(conn, seq, func() (int, error) { return add(reps) })
}

// commitApply is commit with the accumulation abstracted to a closure —
// the shared exactly-once core for both sequenced batch shapes (0x06
// applies decoded report slices, 0x13 applies decoded columns). apply
// runs at most once, under the session lock, only when conn still owns
// the session and seq is the next in line.
func (ss *connSession) commitApply(conn net.Conn, seq uint64, apply func() (int, error)) (status byte, accepted uint32, err error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.conn != conn {
		return 0, 0, fmt.Errorf("transport: session %#x taken over mid-batch: %w", ss.token, net.ErrClosed)
	}
	switch {
	case seq == ss.lastSeq+1:
		n, _ := apply()
		ss.lastSeq = seq
		ss.accepted += uint64(n)
		ss.acks[seq%ackRingSize] = ackRec{seq: seq, accepted: uint32(n)}
		return ackOK, uint32(n), nil
	case seq <= ss.lastSeq:
		if rec := ss.acks[seq%ackRingSize]; rec.seq == seq {
			return ackOK, rec.accepted, nil
		}
		return ackOK, 0, nil
	default:
		return ackRetry, 0, nil
	}
}

// sessionTable maps live session tokens to their state. Sessions are
// swept lazily on HELLO traffic: a detached session older than the TTL
// is dropped, so an unresumed crash leaks nothing permanent.
type sessionTable struct {
	mu sync.Mutex
	m  map[uint64]*connSession
}

// open mints a fresh session owned by conn under a
// cryptographically random nonzero token.
func (t *sessionTable) open(conn net.Conn) (*connSession, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[uint64]*connSession)
	}
	for {
		token, err := newSessionToken()
		if err != nil {
			return nil, err
		}
		if _, dup := t.m[token]; dup {
			continue
		}
		ss := &connSession{token: token, conn: conn}
		t.m[token] = ss
		return ss, nil
	}
}

// resume re-attaches conn to the token's session, returning the
// connection it displaced (nil when the session was detached). ok is
// false for unknown or swept tokens.
func (t *sessionTable) resume(token uint64, conn net.Conn) (ss *connSession, displaced net.Conn, ok bool) {
	t.mu.Lock()
	ss = t.m[token]
	t.mu.Unlock()
	if ss == nil {
		return nil, nil, false
	}
	ss.mu.Lock()
	displaced = ss.conn
	ss.conn = conn
	ss.mu.Unlock()
	return ss, displaced, true
}

// detach releases conn's ownership of the session (if it still holds
// it) and timestamps it for the TTL sweep.
func (t *sessionTable) detach(ss *connSession, conn net.Conn) {
	ss.mu.Lock()
	if ss.conn == conn {
		ss.conn = nil
		ss.lastActive = time.Now()
	}
	ss.mu.Unlock()
}

// sweep drops detached sessions idle for longer than ttl.
func (t *sessionTable) sweep(ttl time.Duration) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for token, ss := range t.m {
		ss.mu.Lock()
		stale := ss.conn == nil && !ss.lastActive.IsZero() && now.Sub(ss.lastActive) > ttl
		ss.mu.Unlock()
		if stale {
			delete(t.m, token)
		}
	}
}

// newSessionToken draws a nonzero random token (zero is the
// open-a-new-session sentinel on the wire). Tokens live in the low 48
// bits of the HELLO token field — the high 16 carry the versioned-HELLO
// flags and protocol version (see cbatch.go) — so 48 bits is the full
// token space, still far beyond collision range for the session counts
// one collector holds.
func newSessionToken() (uint64, error) {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return 0, err
		}
		if token := binary.BigEndian.Uint64(b[:]) & helloTokenMask; token != 0 {
			return token, nil
		}
	}
}
