package transport

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"github.com/hdr4me/hdr4me/internal/est"
	"github.com/hdr4me/hdr4me/internal/highdim"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/transport/faultconn"
)

// reconnectReports builds a deterministic stream of n in-range reports
// over d dimensions, so two ingestion runs are comparable bit for bit.
func reconnectReports(n, d int) []est.Report {
	reps := make([]est.Report, n)
	for i := range reps {
		reps[i] = est.Report{
			Dims:   []uint32{uint32(i % d)},
			Values: []float64{math.Sin(float64(i)) / 2},
		}
	}
	return reps
}

// TestReconnectExactlyOnceCounts is the tentpole's proof obligation: a
// client whose connection is severed twice mid-stream must, after
// auto-reconnecting and replaying, leave the collector with exactly the
// same Counts as an identical run over a never-failing connection — no
// report lost, none double-counted.
func TestReconnectExactlyOnceCounts(t *testing.T) {
	const (
		nReports = 8000
		dims     = 8
		batch    = 64
	)
	proto, err := highdim.NewProtocol(ldp.Laplace{}, 1, dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	reps := reconnectReports(nReports, dims)

	// Flaky run: client → proxy → collector, with the proxy pulling the
	// cable twice mid-stream.
	srvFlaky, addrFlaky := startTestServer(t, proto)
	proxy, err := faultconn.NewProxy(addrFlaky)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	bc, err := DialBuffered(proxy.Addr(), WithBatchSize(batch), WithReconnect(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if i == 3000 || i == 6000 {
			proxy.CutLinks()
		}
		if err := bc.Add(rep); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	if err := bc.Close(); err != nil {
		t.Fatalf("Close after flaky run: %v", err)
	}
	if got := bc.Sent(); got != nReports {
		t.Fatalf("Sent() = %d; want %d", got, nReports)
	}
	if got := bc.Accepted(); got != nReports {
		t.Fatalf("Accepted() = %d; want %d — lost or double-counted acks", got, nReports)
	}
	if got := bc.Reconnects(); got < 2 {
		t.Fatalf("Reconnects() = %d; want >= 2 (the proxy cut the cable twice)", got)
	}
	if bc.Replayed() == 0 {
		t.Fatal("Replayed() = 0; cuts mid-pipeline must have forced replays")
	}

	// Reference run: same reports, same batching, healthy connection.
	srvClean, addrClean := startTestServer(t, proto)
	bcClean, err := DialBuffered(addrClean, WithBatchSize(batch), WithReconnect(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if err := bcClean.Add(rep); err != nil {
			t.Fatalf("clean Add %d: %v", i, err)
		}
	}
	if err := bcClean.Close(); err != nil {
		t.Fatalf("Close after clean run: %v", err)
	}

	countsFlaky := srvFlaky.Registry().Default().Estimator().Counts()
	countsClean := srvClean.Registry().Default().Estimator().Counts()
	if !reflect.DeepEqual(countsFlaky, countsClean) {
		t.Fatalf("Counts diverge after reconnects:\nflaky: %v\nclean: %v", countsFlaky, countsClean)
	}

	// The estimate sums must agree too — not bitwise (reports land in
	// different accumulation lanes after a reconnect), but well within
	// float round-off.
	sum := func(xs []float64) (s float64) {
		for _, x := range xs {
			s += x
		}
		return s
	}
	sf := sum(srvFlaky.Registry().Default().Estimator().Estimate())
	sc := sum(srvClean.Registry().Default().Estimator().Estimate())
	if math.Abs(sf-sc) > 1e-9 {
		t.Fatalf("estimate sums diverge: flaky %v vs clean %v", sf, sc)
	}

	if stats := srvFlaky.Stats(); stats.SessionsOpened != 1 || stats.SessionsResumed < 2 {
		t.Fatalf("server stats = %+v; want 1 session opened, >= 2 resumed", stats)
	}
}

// TestSequencedBatchDedupe drives the (session, sequence) grammar over
// the raw client internals: a replayed sequence must be acked from the
// record without re-applying, and a sequence gap must NACK retryable.
func TestSequencedBatchDedupe(t *testing.T) {
	proto, err := highdim.NewProtocol(ldp.Laplace{}, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startTestServer(t, proto)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	info, err := cl.Hello(0)
	if err != nil {
		t.Fatalf("Hello: %v", err)
	}
	if info.Token == 0 || info.LastSeq != 0 || info.Accepted != 0 {
		t.Fatalf("fresh session info = %+v; want nonzero token, zero progress", info)
	}

	reps := reconnectReports(10, 4)
	exchange := func(seq uint64, reps []est.Report) (byte, int) {
		t.Helper()
		cl.mu.Lock()
		defer cl.mu.Unlock()
		n, err := cl.sendSeqBatchLocked("", seq, reps)
		if err != nil {
			t.Fatalf("send seq %d: %v", seq, err)
		}
		status, acc, err := cl.readBatchStatusLocked(n)
		if err != nil {
			t.Fatalf("read ack seq %d: %v", seq, err)
		}
		return status, acc
	}

	if status, acc := exchange(1, reps); status != ackOK || acc != 10 {
		t.Fatalf("seq 1: status %#x accepted %d; want applied 10", status, acc)
	}
	// Replay of seq 1: same ack, nothing re-applied.
	if status, acc := exchange(1, reps); status != ackOK || acc != 10 {
		t.Fatalf("seq 1 replay: status %#x accepted %d; want duplicate ack 10", status, acc)
	}
	// Gap (seq 3 while lastSeq is 1): retryable NACK, nothing applied.
	if status, _ := exchange(3, reps); status != ackRetry {
		t.Fatalf("seq 3 gap: status %#x; want ackRetry %#x", status, ackRetry)
	}
	// The real seq 2 still applies.
	if status, acc := exchange(2, reps); status != ackOK || acc != 10 {
		t.Fatalf("seq 2: status %#x accepted %d; want applied 10", status, acc)
	}

	var total int64
	for _, c := range srv.Registry().Default().Estimator().Counts() {
		total += c
	}
	if total != 20 {
		t.Fatalf("collector holds %d reports; want 20 (dedupe or gap leaked into state)", total)
	}
	stats := srv.Stats()
	if stats.BatchesDeduped != 1 {
		t.Fatalf("BatchesDeduped = %d; want 1", stats.BatchesDeduped)
	}
	if stats.BatchesShed != 1 {
		t.Fatalf("BatchesShed = %d; want 1 (the gap)", stats.BatchesShed)
	}
}

// TestHelloResumeCarriesProgress proves a successor connection inherits
// the session's applied prefix and cumulative accepted count — the
// reconciliation a reconnecting client's accounting rests on.
func TestHelloResumeCarriesProgress(t *testing.T) {
	proto, err := highdim.NewProtocol(ldp.Laplace{}, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, proto)

	cl1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cl1.Hello(0)
	if err != nil {
		t.Fatalf("Hello(0): %v", err)
	}
	reps := reconnectReports(7, 4)
	cl1.mu.Lock()
	if _, err := cl1.sendSeqBatchLocked("", 1, reps); err != nil {
		cl1.mu.Unlock()
		t.Fatalf("send: %v", err)
	}
	if _, _, err := cl1.readBatchStatusLocked(len(reps)); err != nil {
		cl1.mu.Unlock()
		t.Fatalf("ack: %v", err)
	}
	cl1.mu.Unlock()
	cl1.Close() // crash

	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	resumed, err := cl2.Hello(info.Token)
	if err != nil {
		t.Fatalf("resume Hello: %v", err)
	}
	if resumed.Token != info.Token || resumed.LastSeq != 1 || resumed.Accepted != 7 {
		t.Fatalf("resumed info = %+v; want token %#x, lastSeq 1, accepted 7", resumed, info.Token)
	}
	// Sequencing continues where the dead connection left off.
	cl2.mu.Lock()
	if _, err := cl2.sendSeqBatchLocked("", 2, reps); err != nil {
		cl2.mu.Unlock()
		t.Fatalf("send seq 2: %v", err)
	}
	status, acc, err := cl2.readBatchStatusLocked(len(reps))
	cl2.mu.Unlock()
	if err != nil || status != ackOK || acc != 7 {
		t.Fatalf("seq 2 after resume: status %#x acc %d err %v; want applied 7", status, acc, err)
	}
}

// TestHelloUnknownTokenRejected: a token the collector does not know
// (expired, swept, or fabricated) must be rejected fatally, not
// silently given a fresh session the client would misinterpret.
func TestHelloUnknownTokenRejected(t *testing.T) {
	proto, err := highdim.NewProtocol(ldp.Laplace{}, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, proto)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Hello(0xdeadbeef)
	if !errors.Is(err, ErrSessionRejected) {
		t.Fatalf("Hello(unknown token) = %v; want ErrSessionRejected", err)
	}
	// The rejection is a whole exchange: the connection stays usable.
	if _, err := cl.Hello(0); err != nil {
		t.Fatalf("Hello(0) after rejection: %v", err)
	}
}

// TestSessionTakeoverDisplacesOldConnection: resuming a session from a
// second connection must close the first, so a zombie connection cannot
// race the successor's replay.
func TestSessionTakeoverDisplacesOldConnection(t *testing.T) {
	proto, err := highdim.NewProtocol(ldp.Laplace{}, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, proto)

	cl1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	info, err := cl1.Hello(0)
	if err != nil {
		t.Fatal(err)
	}

	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.Hello(info.Token); err != nil {
		t.Fatalf("takeover Hello: %v", err)
	}

	// The displaced connection was closed server-side; its next exchange
	// fails instead of corrupting the successor's session.
	cl1.SetTimeout(2 * time.Second)
	if _, err := cl1.Counts(); err == nil {
		t.Fatal("displaced connection still serving; want server-side close")
	}
}

// TestBufferedClientRecoversFromInjectedCut exercises the reconnect
// path with a faultconn-injected failure on the client's own socket
// (rather than a proxy cut): the cut batch is replayed over a fresh
// dial and nothing is double-counted.
func TestBufferedClientRecoversFromInjectedCut(t *testing.T) {
	const (
		nReports = 500
		dims     = 4
		batch    = 50
	)
	proto, err := highdim.NewProtocol(ldp.Laplace{}, 1, dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startTestServer(t, proto)

	raw, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := faultconn.Wrap(raw.conn)
	bc := NewBufferedClient(NewClient(fc),
		WithBatchSize(batch),
		WithReconnect(func() (*Client, error) { return Dial(addr) }))
	// Let the session handshake and the first two batches through, then
	// fail the socket on a later write.
	fc.CutAfterWrites(3)

	for i, rep := range reconnectReports(nReports, dims) {
		if err := bc.Add(rep); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	if err := bc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := bc.Accepted(); got != nReports {
		t.Fatalf("Accepted() = %d; want %d", got, nReports)
	}
	if bc.Reconnects() == 0 {
		t.Fatal("Reconnects() = 0; the injected cut must have forced a redial")
	}
	var total int64
	for _, c := range srv.Registry().Default().Estimator().Counts() {
		total += c
	}
	if total != nReports {
		t.Fatalf("collector holds %d reports; want exactly %d", total, nReports)
	}
}
