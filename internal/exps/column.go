package exps

import (
	"github.com/hdr4me/hdr4me/internal/dataset"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/mathx"
)

// Column extracts one dimension of a dataset into memory. The Fig. 2/3
// experiments only observe the deviation of a single dimension, and under
// the sampling protocol each user reports dimension j independently with
// probability m/d — so the per-dimension marginal can be simulated exactly
// from the column alone, at ~d/m the speed of a full-protocol round. This
// is what makes the paper-scale Fig. 2 configuration (n = 200,000,
// d = 5,000, 1,000 repetitions) tractable.
func Column(ds dataset.Dataset, j int) []float64 {
	n := ds.NumUsers()
	col := make([]float64, n)
	row := make([]float64, ds.Dim())
	for i := 0; i < n; i++ {
		ds.Row(i, row)
		col[i] = row[j]
	}
	return col
}

// ColumnDeviationTrial simulates one collection round restricted to a
// single dimension: every user independently reports with probability
// pReport = m/d, perturbing her value with epsPerDim. It returns
// θ̂ⱼ − θ̄ⱼ (0 reports → deviation −θ̄ⱼ, matching an estimate of 0).
func ColumnDeviationTrial(col []float64, trueMean float64, mech ldp.Mechanism, epsPerDim, pReport float64, rng *mathx.RNG) float64 {
	var sum mathx.KahanSum
	var r int64
	for _, v := range col {
		if pReport < 1 && !rng.Bernoulli(pReport) {
			continue
		}
		sum.Add(mech.Perturb(rng, v, epsPerDim))
		r++
	}
	if r == 0 {
		return -trueMean
	}
	return sum.Value()/float64(r) - trueMean
}

// ColumnDeviationTrialNative is the Square Wave variant in SW's native
// [0, 1] frame, used by the Fig. 3 case-study reproduction (the paper's
// §IV-C treats the values {0.1,...,1.0} as native SW inputs).
func ColumnDeviationTrialNative(col []float64, trueMean float64, sw ldp.SquareWave, epsPerDim, pReport float64, rng *mathx.RNG) float64 {
	var sum mathx.KahanSum
	var r int64
	for _, v := range col {
		if pReport < 1 && !rng.Bernoulli(pReport) {
			continue
		}
		sum.Add(sw.PerturbNative(rng, v, epsPerDim))
		r++
	}
	if r == 0 {
		return -trueMean
	}
	return sum.Value()/float64(r) - trueMean
}
