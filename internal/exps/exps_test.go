package exps

import (
	"math"
	"strings"
	"testing"

	"github.com/hdr4me/hdr4me/internal/dataset"
	"github.com/hdr4me/hdr4me/internal/ldp"
)

func TestScaleHelpers(t *testing.T) {
	s := QuickScale()
	if s.users(100_000) != 10_000 || s.trials(100) != 10 {
		t.Fatalf("quick scale: users=%d trials=%d", s.users(100_000), s.trials(100))
	}
	if got := s.users(500); got != 100 {
		t.Errorf("user floor = %d, want 100", got)
	}
	if got := s.trials(10); got != 3 {
		t.Errorf("trial floor = %d, want 3", got)
	}
	p := PaperScale()
	if p.users(12345) != 12345 || p.trials(77) != 77 {
		t.Error("paper scale must be identity")
	}
	if Workers() < 1 {
		t.Error("Workers must be ≥ 1")
	}
}

func TestColumnExtraction(t *testing.T) {
	ds := dataset.NewUniform(50, 4, 1)
	col := Column(ds, 2)
	row := make([]float64, 4)
	for i := 0; i < 50; i++ {
		ds.Row(i, row)
		if col[i] != row[2] {
			t.Fatalf("column mismatch at user %d", i)
		}
	}
}

func TestFig2CLTMatchesExperiment(t *testing.T) {
	// Scaled-down Fig. 2: the empirical pdf of the deviation must match the
	// framework Gaussian with small total-variation error for all three
	// evaluated mechanisms.
	if testing.Short() {
		t.Skip("fig2 skipped in -short")
	}
	cfg := Fig2Config{Users: 20_000, Dims: 200, M: 20, Eps: 1, Trials: 400, Bins: 31, Seed: 42}
	for _, mech := range ldp.Evaluated() {
		s := Fig2(mech, cfg)
		if tv := s.TotalVariationError(); tv > 0.12 {
			t.Errorf("%s: TV error %v, want < 0.12", mech.Name(), tv)
		}
		if len(s.Centers) != cfg.Bins || len(s.Empirical) != cfg.Bins || len(s.Analytic) != cfg.Bins {
			t.Errorf("%s: series shape wrong", mech.Name())
		}
		if !strings.Contains(RenderCLT(s), mech.Name()) {
			t.Errorf("render missing mechanism name")
		}
	}
}

func TestFig3CaseStudyMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 skipped in -short")
	}
	cfg := PaperFig3Config()
	cfg.Trials = 300
	pm := Fig3Piecewise(cfg)
	if tv := pm.TotalVariationError(); tv > 0.15 {
		t.Errorf("PM case study TV error %v", tv)
	}
	// PM case-study σ² must be the paper's 533.210.
	if math.Abs(pm.Dev.Sigma2-533.210)/533.210 > 1e-3 {
		t.Errorf("PM σ² = %v", pm.Dev.Sigma2)
	}
	sw := Fig3Square(cfg)
	if tv := sw.TotalVariationError(); tv > 0.15 {
		t.Errorf("SW case study TV error %v", tv)
	}
	// The realized-frequency δ lands near the idealized −0.049 (paper
	// Eq. 19); the exact idealized constant is asserted in internal/analysis.
	if math.Abs(sw.Dev.Delta-(-0.05)) > 0.01 {
		t.Errorf("SW δ = %v, want ≈ −0.05", sw.Dev.Delta)
	}
}

func TestTableIIRender(t *testing.T) {
	rows := TableII()
	txt := RenderTableII(rows)
	for _, want := range []string{"Piecewise", "Square", "winner", "0.001"} {
		if !strings.Contains(txt, want) {
			t.Errorf("render missing %q:\n%s", want, txt)
		}
	}
}

// smallGaussian returns a fast Fig. 4-style dataset for shape tests.
func smallGaussian() *dataset.Memoized {
	return dataset.Memoize(dataset.NewGaussian(4000, 60, 77))
}

func testSweepConfig() SweepConfig {
	return SweepConfig{Trials: 4, Seed: 7, Conf: 0.999, SpecAtoms: 8, SpecSampleUsers: 400, Workers: 4}
}

func TestFig4ShapeLaplace(t *testing.T) {
	// The headline reproduction: at tight budgets on a high-dimensional
	// Gaussian dataset, both L1 and L2 must beat the naive aggregation for
	// Laplace, and baseline MSE must fall as ε grows.
	if testing.Short() {
		t.Skip("fig4 shape skipped in -short")
	}
	ds := smallGaussian()
	pts := MSEvsEps(ds, ldp.Laplace{}, []float64{0.4, 3.2}, testSweepConfig())
	for _, p := range pts {
		if p.L1.Mean >= p.Base.Mean {
			t.Errorf("ε=%v: L1 %v did not beat baseline %v", p.Eps, p.L1.Mean, p.Base.Mean)
		}
		if p.L2.Mean >= p.Base.Mean {
			t.Errorf("ε=%v: L2 %v did not beat baseline %v", p.Eps, p.L2.Mean, p.Base.Mean)
		}
	}
	if pts[1].Base.Mean >= pts[0].Base.Mean {
		t.Errorf("baseline MSE must fall with ε: %v → %v", pts[0].Base.Mean, pts[1].Base.Mean)
	}
}

func TestFig4ShapePiecewise(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 shape skipped in -short")
	}
	ds := smallGaussian()
	pts := MSEvsEps(ds, ldp.Piecewise{}, []float64{0.4}, testSweepConfig())
	p := pts[0]
	if p.L1.Mean >= p.Base.Mean {
		t.Errorf("L1 %v did not beat baseline %v", p.L1.Mean, p.Base.Mean)
	}
	if p.L2.Mean >= p.Base.Mean {
		t.Errorf("L2 %v did not beat baseline %v", p.L2.Mean, p.Base.Mean)
	}
}

func TestFig4ShapeSquareWaveNotHelped(t *testing.T) {
	// §VI: "our protocol is not suitable for Square wave whose deviation is
	// already small" — SW sits below the Lemma 4/5 thresholds, so HDR4ME
	// must yield no improvement (and may be harmful; the paper's own
	// caveat). The guarded variant must detect this and leave the naive
	// aggregation untouched.
	if testing.Short() {
		t.Skip("fig4 shape skipped in -short")
	}
	ds := smallGaussian()
	pts := MSEvsEps(ds, ldp.SquareWave{}, []float64{100}, testSweepConfig())
	p := pts[0]
	if p.L1.Mean < 0.8*p.Base.Mean {
		t.Errorf("L1 should not meaningfully beat the baseline for SW: %v vs %v", p.L1.Mean, p.Base.Mean)
	}
	if p.Base.Mean > 0.5 {
		t.Errorf("SW baseline surprisingly bad: %v", p.Base.Mean)
	}
	guarded := testSweepConfig()
	guarded.Guarded = true
	gp := MSEvsEps(ds, ldp.SquareWave{}, []float64{100}, guarded)[0]
	if math.Abs(gp.L1.Mean-gp.Base.Mean) > 1e-12 {
		t.Errorf("guarded L1 must equal the baseline for SW: %v vs %v", gp.L1.Mean, gp.Base.Mean)
	}
	if math.Abs(gp.L2.Mean-gp.Base.Mean) > 1e-12 {
		t.Errorf("guarded L2 must equal the baseline for SW: %v vs %v", gp.L2.Mean, gp.Base.Mean)
	}
}

func TestFig5DimensionalitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 skipped in -short")
	}
	base := dataset.NewCOV19Like(3000, 40, 5)
	cfg := testSweepConfig()
	pts := MSEvsDims(base, []int{10, 40, 80}, ldp.Laplace{}, 0.8, cfg)
	if len(pts) != 3 || pts[0].Dims != 10 || pts[2].Dims != 80 {
		t.Fatalf("points = %+v", pts)
	}
	// Baseline MSE grows with dimensionality (budget dilution); L1 beats
	// baseline at every width (Fig. 5's message).
	if pts[2].Base.Mean <= pts[0].Base.Mean {
		t.Errorf("baseline should degrade with d: %v → %v", pts[0].Base.Mean, pts[2].Base.Mean)
	}
	for _, p := range pts {
		if p.L1.Mean >= p.Base.Mean {
			t.Errorf("d=%d: L1 %v did not beat baseline %v", p.Dims, p.L1.Mean, p.Base.Mean)
		}
	}
	txt := RenderMSE("fig5", true, pts)
	if !strings.Contains(txt, "dims") {
		t.Error("render missing dims header")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations skipped in -short")
	}
	ds := dataset.Memoize(dataset.NewGaussian(2000, 30, 9))
	cfg := SweepConfig{Trials: 3, Seed: 11, Conf: 0.999, SpecAtoms: 6, SpecSampleUsers: 300, Workers: 4}

	conf := AblationLambdaConfidence(ds, ldp.Laplace{}, 0.4, []float64{0.9, 0.999}, cfg)
	if len(conf) != 2 {
		t.Fatalf("conf ablation rows: %d", len(conf))
	}
	guard := AblationGuarded(ds, ldp.Laplace{}, 0.4, cfg)
	if len(guard) != 2 || guard[0].Label != "always-on" || guard[1].Label != "guarded" {
		t.Fatalf("guard ablation rows: %+v", guard)
	}
	floors := AblationL2Floor(ds, ldp.Laplace{}, 0.4, []float64{0.05}, cfg)
	if len(floors) != 2 || floors[0].Label != "paper" {
		t.Fatalf("floor ablation rows: %+v", floors)
	}
	ms := AblationSamplingM(ds, ldp.Laplace{}, 0.4, []int{5, 30}, cfg)
	if len(ms) != 2 {
		t.Fatalf("m ablation rows: %+v", ms)
	}
	if !strings.Contains(RenderAblation("t", ms), "m=5") {
		t.Error("ablation render missing label")
	}
}

func TestPaperDatasetsShapesQuickScale(t *testing.T) {
	d := NewPaperDatasets(Scale{UsersDiv: 100, TrialsDiv: 100})
	if d.Gaussian.Dim() != 100 || d.Poisson.Dim() != 300 || d.Uniform.Dim() != 500 || d.COV19.Dim() != 750 {
		t.Fatal("paper dataset dims wrong")
	}
	if d.Gaussian.NumUsers() != 1000 {
		t.Fatalf("scaled users = %d", d.Gaussian.NumUsers())
	}
}
