package exps

import (
	"fmt"

	"github.com/hdr4me/hdr4me/internal/dataset"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/metrics"
)

// AblationPoint is one row of an ablation sweep.
type AblationPoint struct {
	Label string
	Base  metrics.Summary
	L1    metrics.Summary
	L2    metrics.Summary
}

// AblationLambdaConfidence sweeps the λ* quantile confidence: too low a
// confidence under-thresholds (residual noise survives), too high
// over-shrinks. The paper fixes sup|·| implicitly; this quantifies the
// sensitivity of that choice.
func AblationLambdaConfidence(ds *dataset.Memoized, mech ldp.Mechanism, eps float64, confs []float64, cfg SweepConfig) []AblationPoint {
	out := make([]AblationPoint, 0, len(confs))
	for _, conf := range confs {
		c := cfg
		c.Conf = conf
		pt := MSEvsEps(ds, mech, []float64{eps}, c)[0]
		out = append(out, AblationPoint{Label: fmt.Sprintf("conf=%g", conf), Base: pt.Base, L1: pt.L1, L2: pt.L2})
	}
	return out
}

// AblationGuarded compares always-on HDR4ME against the guarded variant
// that only fires above the Lemma 4/5 thresholds — the paper's "our
// re-calibration can be harmful" warning turned into a measurement.
func AblationGuarded(ds *dataset.Memoized, mech ldp.Mechanism, eps float64, cfg SweepConfig) []AblationPoint {
	out := make([]AblationPoint, 0, 2)
	for _, guarded := range []bool{false, true} {
		c := cfg
		c.Guarded = guarded
		pt := MSEvsEps(ds, mech, []float64{eps}, c)[0]
		label := "always-on"
		if guarded {
			label = "guarded"
		}
		out = append(out, AblationPoint{Label: label, Base: pt.Base, L1: pt.L1, L2: pt.L2})
	}
	return out
}

// AblationL2Floor compares the paper-faithful L2 weights (divergent for
// unbiased mechanisms) against floored variants.
func AblationL2Floor(ds *dataset.Memoized, mech ldp.Mechanism, eps float64, floors []float64, cfg SweepConfig) []AblationPoint {
	out := make([]AblationPoint, 0, len(floors)+1)
	pt := MSEvsEps(ds, mech, []float64{eps}, cfg)[0]
	out = append(out, AblationPoint{Label: "paper", Base: pt.Base, L1: pt.L1, L2: pt.L2})
	for _, f := range floors {
		c := cfg
		c.L2Floor = f
		p := MSEvsEps(ds, mech, []float64{eps}, c)[0]
		out = append(out, AblationPoint{Label: fmt.Sprintf("floor=%g", f), Base: p.Base, L1: p.L1, L2: p.L2})
	}
	return out
}

// AblationSamplingM sweeps the reported-dimension count m at fixed ε: fewer
// reported dimensions concentrate budget (less noise per report) but thin
// out reports per dimension — the §III-B trade-off.
func AblationSamplingM(ds *dataset.Memoized, mech ldp.Mechanism, eps float64, ms []int, cfg SweepConfig) []AblationPoint {
	out := make([]AblationPoint, 0, len(ms))
	for _, m := range ms {
		if m > ds.Dim() {
			m = ds.Dim()
		}
		pt := MSEvsEpsAtM(ds, mech, []float64{eps}, m, cfg)[0]
		out = append(out, AblationPoint{Label: fmt.Sprintf("m=%d", m), Base: pt.Base, L1: pt.L1, L2: pt.L2})
	}
	return out
}

// RenderAblation prints an ablation sweep as a text table.
func RenderAblation(title string, points []AblationPoint) string {
	out := title + "\n"
	out += fmt.Sprintf("%16s %14s %14s %14s\n", "variant", "baseline", "L1", "L2")
	for _, p := range points {
		out += fmt.Sprintf("%16s %14.6g %14.6g %14.6g\n", p.Label, p.Base.Mean, p.L1.Mean, p.L2.Mean)
	}
	return out
}
