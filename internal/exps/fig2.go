package exps

import (
	"fmt"
	"math"

	"github.com/hdr4me/hdr4me/internal/analysis"
	"github.com/hdr4me/hdr4me/internal/dataset"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/mathx"
)

// CLTSeries is one sub-figure of Fig. 2/3: the framework's Gaussian pdf
// (the "CLT" line) against the empirical pdf of the deviation in one
// dimension across repeated collection rounds.
type CLTSeries struct {
	Mechanism string
	Dev       analysis.Deviation
	Centers   []float64 // bin centers
	Empirical []float64 // empirical pdf estimate per bin
	Analytic  []float64 // framework pdf at bin centers
	Trials    int
}

// MaxAbsPDFError returns max_i |empirical − analytic| over bins — the
// visual gap between the orange squares and the blue line in Fig. 2.
func (s CLTSeries) MaxAbsPDFError() float64 {
	m := 0.0
	for i := range s.Centers {
		if d := math.Abs(s.Empirical[i] - s.Analytic[i]); d > m {
			m = d
		}
	}
	return m
}

// TotalVariationError returns (1/2)Σ|empirical − analytic|·width, a scale-
// free summary of the pdf match in [0, 1].
func (s CLTSeries) TotalVariationError() float64 {
	if len(s.Centers) < 2 {
		return 0
	}
	width := s.Centers[1] - s.Centers[0]
	var k mathx.KahanSum
	for i := range s.Centers {
		k.Add(math.Abs(s.Empirical[i] - s.Analytic[i]))
	}
	return k.Value() * width / 2
}

// Fig2Config is the Fig. 2 workload: Uniform dataset, n = 200,000,
// d = 5,000, m = 50, ε = 1, 1,000 repetitions, deviation of dimension 1.
type Fig2Config struct {
	Users, Dims, M int
	Eps            float64
	Trials         int
	Bins           int
	Seed           uint64
}

// PaperFig2Config returns the paper's configuration.
func PaperFig2Config() Fig2Config {
	return Fig2Config{Users: 200_000, Dims: 5000, M: 50, Eps: 1, Trials: 1000, Bins: 41, Seed: 0xf162}
}

// ScaledFig2Config shrinks the paper configuration by s, narrowing the
// histogram so each bin still sees enough trials for a readable pdf.
func ScaledFig2Config(s Scale) Fig2Config {
	c := PaperFig2Config()
	c.Users = s.users(c.Users)
	c.Trials = s.trials(c.Trials)
	if c.Trials < 300 {
		c.Bins = 15
	}
	return c
}

// Fig2 runs the CLT-vs-experiment comparison for one mechanism on the
// Uniform dataset (sub-figures a–c use Laplace, Piecewise, Square).
func Fig2(mech ldp.Mechanism, cfg Fig2Config) CLTSeries {
	ds := dataset.NewUniform(cfg.Users, cfg.Dims, cfg.Seed)
	col := Column(ds, 0)
	trueMean := mathx.Mean(col)

	epsPer := cfg.Eps / float64(cfg.M)
	pReport := float64(cfg.M) / float64(cfg.Dims)
	rExp := float64(cfg.Users) * pReport

	fw := analysis.Framework{Mech: mech, EpsPerDim: epsPer, R: rExp}
	var dev analysis.Deviation
	if mech.Bounded() {
		spec := analysis.SpecFromSamples(col, 20)
		dev = fw.Deviation(&spec)
	} else {
		dev = fw.Deviation(nil)
	}

	// Frame the histogram at ±4σ around δ, like the paper's axes.
	half := 4 * dev.Sigma()
	hist := mathx.NewHistogram(dev.Delta-half, dev.Delta+half, cfg.Bins)
	rng := mathx.NewRNG(cfg.Seed ^ 0xabcd)
	for tr := 0; tr < cfg.Trials; tr++ {
		hist.Add(ColumnDeviationTrial(col, trueMean, mech, epsPer, pReport, rng.Child(uint64(tr))))
	}

	s := CLTSeries{Mechanism: mech.Name(), Dev: dev, Trials: cfg.Trials}
	for i := range hist.Counts {
		c := hist.Center(i)
		s.Centers = append(s.Centers, c)
		s.Empirical = append(s.Empirical, hist.Density(i))
		s.Analytic = append(s.Analytic, dev.PDF(c))
	}
	return s
}

// RenderCLT prints a Fig. 2/3 series as an aligned text table.
func RenderCLT(s CLTSeries) string {
	out := fmt.Sprintf("%s: dev ~ N(%.6g, %.6g), %d trials, TV error %.4f\n",
		s.Mechanism, s.Dev.Delta, s.Dev.Sigma2, s.Trials, s.TotalVariationError())
	out += fmt.Sprintf("%12s %12s %12s\n", "center", "empirical", "CLT")
	for i := range s.Centers {
		out += fmt.Sprintf("%12.5g %12.5g %12.5g\n", s.Centers[i], s.Empirical[i], s.Analytic[i])
	}
	return out
}
