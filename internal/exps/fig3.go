package exps

import (
	"github.com/hdr4me/hdr4me/internal/analysis"
	"github.com/hdr4me/hdr4me/internal/dataset"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/mathx"
)

// Fig3Config is the §IV-C case-study experiment behind Fig. 3: a
// discretized dataset with v = 10 values {0.1,...,1.0} (p = 10% each),
// d = 100 dimensions, n = 10,000 users each reporting m = 100 dimensions
// (r = 10,000 reports), collective ε = 0.1 → ε/m = 0.001.
type Fig3Config struct {
	Users  int
	Trials int
	Bins   int
	Seed   uint64
	// EpsPerDim is ε/m (0.001 in the paper).
	EpsPerDim float64
	// R is the report count the analytical side assumes (n·m/d).
	R float64
}

// PaperFig3Config returns the paper's configuration. Every user reports
// every sampled dimension, so the column simulation uses pReport = 1 with
// n = r = 10,000 users.
func PaperFig3Config() Fig3Config {
	return Fig3Config{Users: 10_000, Trials: 1000, Bins: 41, Seed: 0xf163, EpsPerDim: 0.001, R: 10_000}
}

// ScaledFig3Config shrinks trials only: the case study's r is load-bearing
// for its constants (σ² scales with 1/r), so users stay at the paper value.
func ScaledFig3Config(s Scale) Fig3Config {
	c := PaperFig3Config()
	c.Trials = s.trials(c.Trials)
	if c.Trials < 300 {
		c.Bins = 15
	}
	return c
}

// Fig3Piecewise runs the case-study experiment for the Piecewise mechanism
// on the [−1, 1] domain (values {0.1..1.0} are already inside it).
func Fig3Piecewise(cfg Fig3Config) CLTSeries {
	ds := dataset.NewCaseStudyDiscrete(cfg.Users, 1, cfg.Seed)
	col := Column(ds, 0)
	trueMean := mathx.Mean(col)

	// Lemma 3 against the *realized* value frequencies of this dataset (the
	// idealized 10% design values live in analysis.NewCaseStudy).
	spec := analysis.SpecFromCounts(col)
	fw := analysis.Framework{Mech: ldp.Piecewise{}, EpsPerDim: cfg.EpsPerDim, R: cfg.R}
	dev := fw.Deviation(&spec)

	half := 4 * dev.Sigma()
	hist := mathx.NewHistogram(dev.Delta-half, dev.Delta+half, cfg.Bins)
	rng := mathx.NewRNG(cfg.Seed ^ 0x3f3f)
	for tr := 0; tr < cfg.Trials; tr++ {
		hist.Add(ColumnDeviationTrial(col, trueMean, ldp.Piecewise{}, cfg.EpsPerDim, 1, rng.Child(uint64(tr))))
	}
	return histToSeries("Piecewise", dev, hist, cfg.Trials)
}

// Fig3Square runs the case-study experiment for Square Wave in its native
// [0, 1] frame, matching the paper's Eqs. 17–20.
func Fig3Square(cfg Fig3Config) CLTSeries {
	ds := dataset.NewCaseStudyDiscrete(cfg.Users, 1, cfg.Seed)
	col := Column(ds, 0)
	trueMean := mathx.Mean(col)

	// Native-frame Lemma 3 moments against the realized value frequencies.
	sw := ldp.SquareWave{}
	spec := analysis.SpecFromCounts(col)
	var db, vb mathx.KahanSum
	for z, v := range spec.Values {
		db.Add(spec.Probs[z] * sw.NativeBias(v, cfg.EpsPerDim))
		vb.Add(spec.Probs[z] * sw.NativeVar(v, cfg.EpsPerDim))
	}
	dev := analysis.Deviation{Delta: db.Value(), Sigma2: vb.Value() / cfg.R}

	half := 5 * dev.Sigma()
	hist := mathx.NewHistogram(dev.Delta-half, dev.Delta+half, cfg.Bins)
	rng := mathx.NewRNG(cfg.Seed ^ 0x5a5a)
	for tr := 0; tr < cfg.Trials; tr++ {
		hist.Add(ColumnDeviationTrialNative(col, trueMean, sw, cfg.EpsPerDim, 1, rng.Child(uint64(tr))))
	}
	return histToSeries("SquareWave(native)", dev, hist, cfg.Trials)
}

func histToSeries(name string, dev analysis.Deviation, hist *mathx.Histogram, trials int) CLTSeries {
	s := CLTSeries{Mechanism: name, Dev: dev, Trials: trials}
	for i := range hist.Counts {
		c := hist.Center(i)
		s.Centers = append(s.Centers, c)
		s.Empirical = append(s.Empirical, hist.Density(i))
		s.Analytic = append(s.Analytic, dev.PDF(c))
	}
	return s
}
