package exps

import (
	"fmt"

	"github.com/hdr4me/hdr4me/internal/analysis"
	"github.com/hdr4me/hdr4me/internal/dataset"
	"github.com/hdr4me/hdr4me/internal/highdim"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/mathx"
	"github.com/hdr4me/hdr4me/internal/metrics"
	"github.com/hdr4me/hdr4me/internal/recal"
)

// SweepConfig parameterizes the Fig. 4/5 MSE sweeps.
type SweepConfig struct {
	// Trials is the number of repetitions per grid point (paper: 100).
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// Conf is the λ* quantile confidence (see recal.Config).
	Conf float64
	// SpecAtoms is the per-dimension discretization order for Lemma 3.
	SpecAtoms int
	// SpecSampleUsers is how many users are streamed to build the specs.
	SpecSampleUsers int
	// Workers bounds the protocol simulation parallelism.
	Workers int
	// L2Floor, if positive, switches the L2 weights to the floored ablation
	// variant; zero keeps the paper-faithful rule.
	L2Floor float64
	// Guarded applies HDR4ME only above the Lemma 4/5 thresholds.
	Guarded bool
}

// DefaultSweepConfig mirrors the paper: 100 trials, conf 0.999.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{Trials: 100, Seed: 0xf164, Conf: 0.999, SpecAtoms: 10, SpecSampleUsers: 1000, Workers: Workers()}
}

// ScaledSweepConfig reduces trials by the scale's trial divisor.
func ScaledSweepConfig(s Scale) SweepConfig {
	c := DefaultSweepConfig()
	c.Trials = s.trials(c.Trials)
	return c
}

// MSEPoint is one grid point of a Fig. 4/5 series: the MSE of the naive
// aggregation and of HDR4ME with L1 and L2, summarized over trials.
type MSEPoint struct {
	Eps  float64
	Dims int
	Base metrics.Summary
	L1   metrics.Summary
	L2   metrics.Summary
}

// columnSpecs builds the per-dimension Lemma 3 data specs by streaming a
// sample of users.
func columnSpecs(ds dataset.Dataset, users, atoms int) []analysis.DataSpec {
	n := ds.NumUsers()
	if users > n {
		users = n
	}
	d := ds.Dim()
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, users)
	}
	row := make([]float64, d)
	for i := 0; i < users; i++ {
		ds.Row(i, row)
		for j, v := range row {
			cols[j][i] = v
		}
	}
	specs := make([]analysis.DataSpec, d)
	for j := range specs {
		specs[j] = analysis.SpecFromSamples(cols[j], atoms)
	}
	return specs
}

// deviations evaluates the framework for every dimension at the given
// per-dimension budget and report count.
func deviations(mech ldp.Mechanism, epsPer, r float64, specs []analysis.DataSpec, d int) []analysis.Deviation {
	fw := analysis.Framework{Mech: mech, EpsPerDim: epsPer, R: r}
	if !mech.Bounded() {
		return []analysis.Deviation{fw.Deviation(nil)}
	}
	devs := make([]analysis.Deviation, d)
	for j := range devs {
		devs[j] = fw.Deviation(&specs[j])
	}
	return devs
}

// MSEvsEps reproduces one Fig. 4 sub-figure: the MSE of baseline/L1/L2 as a
// function of the collective budget ε, with every user reporting all d
// dimensions (the paper's "to test the limit of our protocol" setting,
// m = d, so ε is partitioned across all dimensions and r = n).
func MSEvsEps(ds *dataset.Memoized, mech ldp.Mechanism, epsList []float64, cfg SweepConfig) []MSEPoint {
	return MSEvsEpsAtM(ds, mech, epsList, ds.Dim(), cfg)
}

// MSEvsEpsAtM is MSEvsEps with an explicit reported-dimension count m
// (1 ≤ m ≤ d); the m-sweep ablation uses it directly.
func MSEvsEpsAtM(ds *dataset.Memoized, mech ldp.Mechanism, epsList []float64, m int, cfg SweepConfig) []MSEPoint {
	truth := ds.TrueMean()
	d := ds.Dim()
	n := ds.NumUsers()

	var specs []analysis.DataSpec
	if mech.Bounded() {
		specs = columnSpecs(ds, cfg.SpecSampleUsers, cfg.SpecAtoms)
	}

	cfgL1 := recal.Config{Reg: recal.RegL1, Conf: cfg.Conf, Guarded: cfg.Guarded}
	cfgL2 := recal.Config{Reg: recal.RegL2, Conf: cfg.Conf, Guarded: cfg.Guarded, L2Floor: cfg.L2Floor}

	rng := mathx.NewRNG(cfg.Seed)
	points := make([]MSEPoint, 0, len(epsList))
	for ei, eps := range epsList {
		p, err := highdim.NewProtocol(mech, eps, d, m)
		if err != nil {
			panic(err)
		}
		devs := deviations(mech, p.EpsPerDim(), p.ExpectedReports(n), specs, d)
		base := make([]float64, 0, cfg.Trials)
		l1 := make([]float64, 0, cfg.Trials)
		l2 := make([]float64, 0, cfg.Trials)
		for tr := 0; tr < cfg.Trials; tr++ {
			agg, err := highdim.Simulate(p, ds, rng.Child(uint64(ei*100003+tr)), cfg.Workers)
			if err != nil {
				panic(err)
			}
			est := agg.Estimate()
			base = append(base, metrics.MSE(est, truth))
			l1 = append(l1, metrics.MSE(recal.Enhance(est, devs, cfgL1), truth))
			l2 = append(l2, metrics.MSE(recal.Enhance(est, devs, cfgL2), truth))
		}
		points = append(points, MSEPoint{
			Eps:  eps,
			Dims: d,
			Base: metrics.Summarize(base),
			L1:   metrics.Summarize(l1),
			L2:   metrics.Summarize(l2),
		})
	}
	return points
}

// MSEvsDims reproduces Fig. 5: MSE against dimensionality at fixed ε on the
// COV-19 stand-in, columns subsampled/recycled to each target width as the
// paper does for d = 1600.
func MSEvsDims(base dataset.Dataset, dims []int, mech ldp.Mechanism, eps float64, cfg SweepConfig) []MSEPoint {
	points := make([]MSEPoint, 0, len(dims))
	for _, d := range dims {
		ds := dataset.Memoize(dataset.Slice(base, d))
		pts := MSEvsEps(ds, mech, []float64{eps}, cfg)
		pt := pts[0]
		pt.Dims = d
		points = append(points, pt)
	}
	return points
}

// RenderMSE prints a Fig. 4/5 series as a text table keyed by ε or d.
func RenderMSE(title string, byDims bool, points []MSEPoint) string {
	out := title + "\n"
	key := "eps"
	if byDims {
		key = "dims"
	}
	out += fmt.Sprintf("%10s %14s %14s %14s %10s %10s\n", key, "baseline", "L1", "L2", "L1 gain", "L2 gain")
	for _, p := range points {
		k := fmtEps(p.Eps)
		if byDims {
			k = fmt.Sprintf("%d", p.Dims)
		}
		out += fmt.Sprintf("%10s %14.6g %14.6g %14.6g %9.2fx %9.2fx\n",
			k, p.Base.Mean, p.L1.Mean, p.L2.Mean,
			metrics.Improvement(p.Base.Mean, p.L1.Mean),
			metrics.Improvement(p.Base.Mean, p.L2.Mean))
	}
	return out
}
