package exps

import (
	"strings"
	"testing"

	"github.com/hdr4me/hdr4me/internal/analysis"
	"github.com/hdr4me/hdr4me/internal/metrics"
)

func fakeCLT() CLTSeries {
	dev := analysis.Deviation{Delta: 0, Sigma2: 1}
	s := CLTSeries{Mechanism: "Fake", Dev: dev, Trials: 10}
	for i := 0; i < 21; i++ {
		c := -3 + 6*float64(i)/20
		s.Centers = append(s.Centers, c)
		s.Analytic = append(s.Analytic, dev.PDF(c))
		s.Empirical = append(s.Empirical, dev.PDF(c)*1.1)
	}
	return s
}

func TestPlotCLT(t *testing.T) {
	out := PlotCLT(fakeCLT())
	if !strings.Contains(out, "Fake") || !strings.Contains(out, "█") || !strings.Contains(out, "·") {
		t.Fatalf("plot missing elements:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < plotHeight {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
	if PlotCLT(CLTSeries{}) != "(empty series)\n" {
		t.Error("empty series handling")
	}
}

func TestPlotCLTFlatSeries(t *testing.T) {
	s := CLTSeries{Mechanism: "Flat", Centers: []float64{0, 1}, Empirical: []float64{0, 0}, Analytic: []float64{0, 0}}
	out := PlotCLT(s)
	if !strings.Contains(out, "Flat") {
		t.Fatal("flat series must render")
	}
}

func TestPlotMSE(t *testing.T) {
	mk := func(m float64) metrics.Summary { return metrics.Summarize([]float64{m}) }
	pts := []MSEPoint{
		{Eps: 0.1, Base: mk(10), L1: mk(0.1), L2: mk(0.05)},
		{Eps: 1, Base: mk(1), L1: mk(0.08), L2: mk(0.05)},
	}
	out := PlotMSE("fig", false, pts)
	for _, want := range []string{"fig", "B", "1", "2", "0.1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	if PlotMSE("x", false, nil) != "(no points)\n" {
		t.Error("empty points handling")
	}
	// Dim-keyed axis.
	pts[0].Dims, pts[1].Dims = 50, 100
	outD := PlotMSE("fig5", true, pts)
	if !strings.Contains(outD, "50") || !strings.Contains(outD, "100") {
		t.Fatalf("dims axis missing:\n%s", outD)
	}
}

func TestPlotMSEDegenerateEqualValues(t *testing.T) {
	mk := func(m float64) metrics.Summary { return metrics.Summarize([]float64{m}) }
	pts := []MSEPoint{{Eps: 1, Base: mk(1), L1: mk(1), L2: mk(1)}}
	out := PlotMSE("flat", false, pts)
	if !strings.Contains(out, "flat") {
		t.Fatal("degenerate plot must render")
	}
}
