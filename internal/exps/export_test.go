package exps

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"github.com/hdr4me/hdr4me/internal/metrics"
)

func TestWriteMSECSV(t *testing.T) {
	mk := func(vals ...float64) metrics.Summary { return metrics.Summarize(vals) }
	pts := []MSEPoint{
		{Eps: 0.1, Dims: 100, Base: mk(2, 4), L1: mk(1, 1), L2: mk(0.5, 0.7)},
		{Eps: 0.8, Dims: 100, Base: mk(1), L1: mk(0.2), L2: mk(0.1)},
	}
	var buf bytes.Buffer
	if err := WriteMSECSV(&buf, false, pts); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][0] != "eps" || recs[1][0] != "0.1" || recs[1][1] != "3" {
		t.Fatalf("records = %v", recs)
	}
	if recs[1][7] != "2" {
		t.Fatalf("trials column = %v", recs[1][7])
	}
	// Dims mode keys by dimension.
	var buf2 bytes.Buffer
	if err := WriteMSECSV(&buf2, true, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf2.String(), "dims,") {
		t.Fatalf("dims header missing: %s", buf2.String())
	}
}

func TestWriteCLTCSV(t *testing.T) {
	s := fakeCLT()
	var buf bytes.Buffer
	if err := WriteCLTCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(s.Centers)+1 {
		t.Fatalf("%d records, want %d", len(recs), len(s.Centers)+1)
	}
	if recs[0][2] != "clt" {
		t.Fatalf("header = %v", recs[0])
	}
}

func TestWriteTableIICSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTableIICSV(&buf, TableII()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"xi,piecewise,square,winner", "Piecewise", "Square"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}
