package exps

import (
	"fmt"

	"github.com/hdr4me/hdr4me/internal/analysis"
)

// TableII evaluates the §IV-C benchmark (paper Table II) purely
// analytically — no experiment, which is the framework's selling point.
func TableII() []analysis.TableIIRow {
	return analysis.NewCaseStudy().TableII()
}

// RenderTableII prints the benchmark in the paper's layout.
func RenderTableII(rows []analysis.TableIIRow) string {
	out := "Table II — probabilities for the supremum to hold in one dimension\n"
	out += fmt.Sprintf("%10s %14s %14s %10s\n", "ξ", "Piecewise", "Square", "winner")
	for _, r := range rows {
		out += fmt.Sprintf("%10g %14.4g %14.4g %10s\n", r.Xi, r.Piecewise, r.Square, r.Winner)
	}
	return out
}
