package exps

import (
	"fmt"
	"math"
	"strings"
)

// The paper's artifacts are figures; a terminal-friendly rendering keeps the
// "shape" reproduction inspectable without a plotting stack. PlotCLT draws a
// Fig. 2/3 panel (empirical histogram bars with the framework pdf overlaid);
// PlotMSE draws a Fig. 4/5 panel (log-scale MSE series per variant).

const (
	plotWidth  = 60
	plotHeight = 16
)

// PlotCLT renders a CLTSeries as an ASCII chart: '█' columns for the
// empirical pdf, '·' markers for the framework (CLT) pdf.
func PlotCLT(s CLTSeries) string {
	if len(s.Centers) == 0 {
		return "(empty series)\n"
	}
	maxY := 0.0
	for i := range s.Centers {
		maxY = math.Max(maxY, math.Max(s.Empirical[i], s.Analytic[i]))
	}
	if maxY == 0 {
		maxY = 1
	}
	rows := make([][]rune, plotHeight)
	for r := range rows {
		rows[r] = []rune(strings.Repeat(" ", len(s.Centers)))
	}
	level := func(y float64) int {
		l := int(y / maxY * float64(plotHeight))
		if l >= plotHeight {
			l = plotHeight - 1
		}
		return l
	}
	for i := range s.Centers {
		for l := 0; l <= level(s.Empirical[i]); l++ {
			if s.Empirical[i] > 0 {
				rows[plotHeight-1-l][i] = '█'
			}
		}
		rows[plotHeight-1-level(s.Analytic[i])][i] = '·'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — empirical (█) vs CLT (·), peak pdf %.4g\n", s.Mechanism, maxY)
	for _, r := range rows {
		b.WriteString(string(r))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12.4g%s%12.4g\n", s.Centers[0], strings.Repeat(" ", maxInt(0, len(s.Centers)-24)), s.Centers[len(s.Centers)-1])
	return b.String()
}

// PlotMSE renders a Fig. 4/5 series as a log-scale ASCII chart with one
// letter per variant: B(aseline), 1(L1), 2(L2).
func PlotMSE(title string, byDims bool, points []MSEPoint) string {
	if len(points) == 0 {
		return "(no points)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	series := [][]float64{{}, {}, {}}
	for _, p := range points {
		for s, v := range []float64{p.Base.Mean, p.L1.Mean, p.L2.Mean} {
			if v <= 0 {
				v = 1e-12
			}
			lv := math.Log10(v)
			series[s] = append(series[s], lv)
			lo = math.Min(lo, lv)
			hi = math.Max(hi, lv)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	cols := len(points)
	colWidth := maxInt(1, plotWidth/cols)
	grid := make([][]rune, plotHeight)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", cols*colWidth))
	}
	marks := []rune{'B', '1', '2'}
	for s, sv := range series {
		for i, lv := range sv {
			row := int((hi - lv) / (hi - lo) * float64(plotHeight-1))
			col := i*colWidth + s%colWidth
			if grid[row][col] == ' ' {
				grid[row][col] = marks[s]
			} else {
				grid[row][col] = '*' // overlap
			}
		}
	}
	var b strings.Builder
	b.WriteString(title + "  [log10 MSE; B=baseline, 1=L1, 2=L2, *=overlap]\n")
	for r, row := range grid {
		y := hi - (hi-lo)*float64(r)/float64(plotHeight-1)
		fmt.Fprintf(&b, "%8.2f |%s\n", y, string(row))
	}
	b.WriteString("          ")
	for _, p := range points {
		key := fmtEps(p.Eps)
		if byDims {
			key = fmt.Sprintf("%d", p.Dims)
		}
		fmt.Fprintf(&b, "%-*s", colWidth, truncate(key, colWidth))
	}
	b.WriteByte('\n')
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
