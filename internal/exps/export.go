package exps

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/hdr4me/hdr4me/internal/analysis"
)

// WriteMSECSV exports a Fig. 4/5 series as CSV (header + one row per grid
// point) for external plotting: key, baseline, l1, l2, their 95% CI
// half-widths, and trial counts.
func WriteMSECSV(w io.Writer, byDims bool, points []MSEPoint) error {
	cw := csv.NewWriter(w)
	key := "eps"
	if byDims {
		key = "dims"
	}
	if err := cw.Write([]string{key, "baseline", "l1", "l2", "baseline_ci95", "l1_ci95", "l2_ci95", "trials"}); err != nil {
		return err
	}
	for _, p := range points {
		k := strconv.FormatFloat(p.Eps, 'g', -1, 64)
		if byDims {
			k = strconv.Itoa(p.Dims)
		}
		rec := []string{
			k,
			f(p.Base.Mean), f(p.L1.Mean), f(p.L2.Mean),
			f(p.Base.HalfCI95()), f(p.L1.HalfCI95()), f(p.L2.HalfCI95()),
			strconv.Itoa(p.Base.N),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCLTCSV exports a Fig. 2/3 series as CSV: bin center, empirical pdf,
// framework pdf.
func WriteCLTCSV(w io.Writer, s CLTSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"center", "empirical", "clt"}); err != nil {
		return err
	}
	for i := range s.Centers {
		if err := cw.Write([]string{f(s.Centers[i]), f(s.Empirical[i]), f(s.Analytic[i])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableIICSV exports the §IV-C benchmark.
func WriteTableIICSV(w io.Writer, rows []analysis.TableIIRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"xi", "piecewise", "square", "winner"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{f(r.Xi), f(r.Piecewise), f(r.Square), r.Winner}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(x float64) string {
	if x != x { // NaN
		return "nan"
	}
	return fmt.Sprintf("%g", x)
}
