// Package exps regenerates every table and figure of the paper's evaluation
// (§VI): Fig. 2 (CLT vs experiment), Fig. 3 (case-study pdfs), Table II
// (supremum benchmark), Fig. 4 (MSE vs ε across four datasets × three
// mechanisms × {baseline, L1, L2}) and Fig. 5 (MSE vs dimensionality), plus
// the ablations DESIGN.md lists.
//
// Experiments accept a Scale so the same code runs both at paper scale and
// at a CI-friendly reduction (the shapes are scale-invariant; only error
// bars widen).
package exps

import (
	"fmt"
	"runtime"

	"github.com/hdr4me/hdr4me/internal/dataset"
)

// Scale shrinks the paper's experiment sizes by integer factors so the full
// suite runs in CI time. Factor 1 everywhere reproduces the paper's sizes.
type Scale struct {
	// UsersDiv divides the number of users.
	UsersDiv int
	// TrialsDiv divides the number of repetitions.
	TrialsDiv int
}

// PaperScale runs experiments exactly at the paper's sizes.
func PaperScale() Scale { return Scale{UsersDiv: 1, TrialsDiv: 1} }

// QuickScale is the default: 10× fewer users, 10× fewer trials. Shapes and
// crossovers survive; absolute MSEs shift by the 10× report-count change.
func QuickScale() Scale { return Scale{UsersDiv: 10, TrialsDiv: 10} }

func (s Scale) users(n int) int {
	if s.UsersDiv <= 1 {
		return n
	}
	u := n / s.UsersDiv
	if u < 100 {
		u = 100
	}
	return u
}

func (s Scale) trials(t int) int {
	if s.TrialsDiv <= 1 {
		return t
	}
	r := t / s.TrialsDiv
	if r < 3 {
		r = 3
	}
	return r
}

// Workers returns the worker count used by all experiment inner loops.
func Workers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		return 1
	}
	return w
}

// PaperDatasets bundles the four evaluation datasets at their paper shapes
// (§VI), scaled by s. Seeds are fixed so every run sees the same data.
type PaperDatasets struct {
	Gaussian *dataset.Memoized // 100,000 × 100
	Poisson  *dataset.Memoized // 150,000 × 300
	Uniform  *dataset.Memoized // 120,000 × 500
	COV19    *dataset.Memoized // 150,000 × 750 (correlated stand-in)
}

// NewPaperDatasets constructs the evaluation datasets under scale s.
func NewPaperDatasets(s Scale) PaperDatasets {
	return PaperDatasets{
		Gaussian: dataset.Memoize(dataset.NewGaussian(s.users(100_000), 100, 0x9a55)),
		Poisson:  dataset.Memoize(dataset.NewPoisson(s.users(150_000), 300, 0x9015)),
		Uniform:  dataset.Memoize(dataset.NewUniform(s.users(120_000), 500, 0x1f2f)),
		COV19:    dataset.Memoize(dataset.NewCOV19Like(s.users(150_000), 750, 0xc019)),
	}
}

// LaplacePMEps is the privacy-budget grid of Figs. 4–5 for Laplace and
// Piecewise; SquareEps is the grid for Square Wave (its utility barely moves
// at small ε, §VI).
var (
	LaplacePMEps = []float64{0.1, 0.2, 0.4, 0.8, 1.6, 3.2}
	SquareEps    = []float64{0.1, 10, 100, 500, 1000, 5000}
)

func fmtEps(e float64) string { return fmt.Sprintf("%g", e) }
