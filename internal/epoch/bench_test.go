package epoch

import (
	"fmt"
	"testing"

	"github.com/hdr4me/hdr4me/internal/est"
	"github.com/hdr4me/hdr4me/internal/highdim"
	"github.com/hdr4me/hdr4me/internal/ldp"
)

// BenchmarkEpochIngest is the acceptance benchmark behind
// BENCH_epoch.json: per-report ingest cost through a rotating epoch ring
// versus the bare one-shot aggregator it wraps, over both ingest paths
// (AddReports batches and a striped lane). The ring must add ZERO
// allocations per report — rotation itself allocates one snapshot per
// epoch, amortized to nothing over the epoch's reports, and the
// per-report path is an atomic counter tick.
func BenchmarkEpochIngest(b *testing.B) {
	const benchEvery = 1 << 16 // reports per epoch: rotation exercised, cost amortized

	newAgg := func(b *testing.B) *highdim.Aggregator {
		b.Helper()
		p, err := highdim.NewProtocol(ldp.Laplace{}, 1, 32, 1)
		if err != nil {
			b.Fatal(err)
		}
		return highdim.NewAggregator(p)
	}
	newRing := func(b *testing.B) *Ring {
		b.Helper()
		r, err := New(newAgg(b), newAgg(b), Config{Every: benchEvery})
		if err != nil {
			b.Fatal(err)
		}
		return r
	}

	const batch = 256
	rep := est.Report{Dims: []uint32{7}, Values: []float64{0.5}}
	reps := make([]est.Report, batch)
	for i := range reps {
		reps[i] = rep
	}

	for _, lane := range []bool{false, true} {
		path := "batch"
		if lane {
			path = "lane"
		}
		for _, ring := range []bool{false, true} {
			mode := "oneshot"
			if ring {
				mode = "ring"
			}
			b.Run(fmt.Sprintf("%s/%s", mode, path), func(b *testing.B) {
				var target est.Estimator
				if ring {
					target = newRing(b)
				} else {
					target = newAgg(b)
				}
				add := func([]est.Report) (int, error) { return est.AddReports(target, reps) }
				if lane {
					l := est.AcquireLane(target)
					add = l.AddReports
				}
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n += batch {
					if _, err := add(reps); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/s")
			})
		}
	}
}
