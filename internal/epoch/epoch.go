// Package epoch adds continual collection on top of the one-shot
// estimator families: a Ring wraps any rotatable estimator and slices
// its accumulation into epochs — the live epoch accumulates in the
// wrapped estimator's stripe lanes exactly as before (the ingest hot
// path is untouched), and a rotation drain-folds those lanes into a
// bounded ring of frozen per-epoch snapshots.
//
// Three read paths derive from the ring without ever blocking ingest:
//
//   - current-epoch: the wrapped estimator's ordinary Estimate/Snapshot,
//     which after a rotation covers only reports since that rotation;
//   - sliding-window: WindowSnapshot/WindowEstimate fold the live epoch
//     plus the last W−1 frozen epochs (int64 counts add exactly, float
//     sums add plainly — oldest epoch first, then the live epoch, a
//     fixed order so the fold is deterministic);
//   - decayed: DecayedEstimate folds every retained epoch with weight
//     γ^age (live epoch age 0), producing real-valued effective counts
//     fed through the family's WeightedEstimator.
//
// Rotation triggers are the caller's: call Rotate from a wall-clock
// ticker, or construct the Ring with Every > 0 to rotate after that many
// accepted reports (counted with one atomic add per batch — no
// allocation, no lock on the ingest path).
//
// Late reports carry the epoch id they belong to (the EPOCH wire frame);
// AddLate buckets them per the ring's lateness Policy. The ring is
// bounded: Retain caps the frozen epochs kept, older snapshots are
// compacted away (their ids remain implied by Cur), so checkpoints stop
// growing without bound.
package epoch

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/hdr4me/hdr4me/internal/est"
	"github.com/hdr4me/hdr4me/internal/mathx"
)

// Policy says what happens to a report tagged with an epoch that is no
// longer the live one.
type Policy int

const (
	// Bucket (default): fold the late report into its frozen epoch when
	// that epoch is still retained, reject it when it has been compacted
	// away. Windowed reads issued after the fold include the report.
	Bucket Policy = iota
	// Reject: refuse every report not tagged with the live epoch.
	Reject
	// Current: fold late reports into the live epoch — the "better
	// counted late than dropped" policy; per-epoch attribution is lost.
	Current
)

// String returns the policy name used by flags and docs.
func (p Policy) String() string {
	switch p {
	case Bucket:
		return "bucket"
	case Reject:
		return "reject"
	case Current:
		return "current"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses a policy name (the -lateness flag values).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "bucket":
		return Bucket, nil
	case "reject":
		return Reject, nil
	case "current":
		return Current, nil
	}
	return 0, fmt.Errorf("epoch: unknown lateness policy %q (want bucket, reject or current)", s)
}

// DefaultRetain is how many frozen epochs a Ring keeps when the caller
// does not say: enough for a 16-epoch sliding window plus the live epoch.
const DefaultRetain = 16

// Config bundles the ring knobs shared by the facade and the registry.
type Config struct {
	// Every rotates after this many accepted reports (0: only explicit
	// Rotate calls — e.g. a wall-clock ticker — rotate).
	Every int64
	// Retain caps the frozen epochs kept (<1 selects DefaultRetain).
	Retain int
	// Lateness picks the late-report policy (zero value: Bucket).
	Lateness Policy
}

// Entry is one frozen epoch of the ring: the epoch's id and the
// snapshot its rotation drained.
type Entry struct {
	ID   uint64
	Snap est.Snapshot
}

// Ring wraps a rotatable estimator with an epoch ring. It implements
// est.Estimator (plus BatchAdder/LaneProvider) by delegating to the
// wrapped estimator, so a Ring registers, serves and checkpoints exactly
// like the estimator it wraps — Snapshot/Estimate/Counts cover the LIVE
// epoch only; the frozen epochs are read through the Window/Decayed
// paths and persisted through State. Safe for concurrent use.
type Ring struct {
	inner   est.Estimator
	rot     est.Rotator // inner, asserted once at construction
	scratch est.Estimator
	cfg     Config

	pending atomic.Int64 // reports accepted since the last rotation

	mu      sync.Mutex
	cur     uint64  // live epoch id
	entries []Entry // frozen epochs, oldest first, ≤ cfg.Retain
}

// New wraps inner (and scratch, an identically configured sibling used
// to validate and fold late reports under the Bucket policy) in an epoch
// ring. inner must implement est.Rotator and est.SnapshotEstimator;
// scratch must implement est.Rotator and may be nil when cfg.Lateness is
// not Bucket.
func New(inner, scratch est.Estimator, cfg Config) (*Ring, error) {
	rot, ok := inner.(est.Rotator)
	if !ok {
		return nil, fmt.Errorf("epoch: %T cannot rotate (no est.Rotator)", inner)
	}
	if _, ok := inner.(est.SnapshotEstimator); !ok {
		return nil, fmt.Errorf("epoch: %T cannot estimate from a fold (no est.SnapshotEstimator)", inner)
	}
	if cfg.Lateness == Bucket {
		if scratch == nil {
			return nil, fmt.Errorf("epoch: Bucket lateness policy needs a scratch estimator")
		}
		if _, ok := scratch.(est.Rotator); !ok {
			return nil, fmt.Errorf("epoch: scratch %T cannot rotate (no est.Rotator)", scratch)
		}
	}
	if cfg.Retain < 1 {
		cfg.Retain = DefaultRetain
	}
	if cfg.Every < 0 {
		return nil, fmt.Errorf("epoch: negative report-count trigger %d", cfg.Every)
	}
	return &Ring{inner: inner, rot: rot, scratch: scratch, cfg: cfg}, nil
}

// Inner returns the wrapped estimator.
func (r *Ring) Inner() est.Estimator { return r.inner }

// Config returns the ring's configuration.
func (r *Ring) Config() Config { return r.cfg }

// ---- est.Estimator by delegation (live epoch) -------------------------------

// Kind implements est.Estimator.
func (r *Ring) Kind() string { return r.inner.Kind() }

// Dims implements est.Estimator.
func (r *Ring) Dims() int { return r.inner.Dims() }

// Observe implements est.Estimator against the live epoch.
func (r *Ring) Observe(t est.Tuple, rng *mathx.RNG) error {
	if err := r.inner.Observe(t, rng); err != nil {
		return err
	}
	r.tick(1)
	return nil
}

// AddReport implements est.Estimator against the live epoch.
func (r *Ring) AddReport(rep est.Report) error {
	if err := r.inner.AddReport(rep); err != nil {
		return err
	}
	r.tick(1)
	return nil
}

// AddReports implements est.BatchAdder against the live epoch.
func (r *Ring) AddReports(reps []est.Report) (int, error) {
	accepted, err := est.AddReports(r.inner, reps)
	r.tick(int64(accepted))
	return accepted, err
}

// Estimate implements est.Estimator: the live epoch's estimate.
func (r *Ring) Estimate() []float64 { return r.inner.Estimate() }

// Counts implements est.Estimator: the live epoch's counts.
func (r *Ring) Counts() []int64 { return r.inner.Counts() }

// Snapshot implements est.Estimator: the live epoch's accumulation. The
// frozen epochs are read through State and the Window/Decayed paths.
func (r *Ring) Snapshot() est.Snapshot { return r.inner.Snapshot() }

// Merge implements est.Estimator: peer snapshots fold into the live epoch.
func (r *Ring) Merge(s est.Snapshot) error { return r.inner.Merge(s) }

// Enhanced implements est.Enhancer when the wrapped estimator does.
func (r *Ring) Enhanced() ([]float64, error) {
	if en, ok := r.inner.(est.Enhancer); ok {
		return en.Enhanced()
	}
	return nil, fmt.Errorf("epoch: %T has no enhanced estimate", r.inner)
}

// AcquireLane implements est.LaneProvider: the returned lane accumulates
// into the live epoch under one stripe of the wrapped estimator and
// counts accepted reports toward the report-count rotation trigger with
// one atomic add per call — nothing else rides the hot path.
func (r *Ring) AcquireLane() est.Lane {
	return ringLane{r: r, lane: est.AcquireLane(r.inner)}
}

type ringLane struct {
	r    *Ring
	lane est.Lane
}

func (l ringLane) AddReport(rep est.Report) error {
	if err := l.lane.AddReport(rep); err != nil {
		return err
	}
	l.r.tick(1)
	return nil
}

func (l ringLane) AddReports(reps []est.Report) (int, error) {
	accepted, err := l.lane.AddReports(reps)
	l.r.tick(int64(accepted))
	return accepted, err
}

// tick advances the report-count rotation trigger.
func (r *Ring) tick(n int64) {
	if r.cfg.Every <= 0 || n <= 0 {
		return
	}
	if r.pending.Add(n) >= r.cfg.Every {
		r.mu.Lock()
		// Re-check under the lock: a concurrent tick may have rotated.
		if r.pending.Load() >= r.cfg.Every {
			r.rotateLocked()
		}
		r.mu.Unlock()
	}
}

// ---- rotation ---------------------------------------------------------------

// Rotate freezes the live epoch: the wrapped estimator's stripes are
// drained into a snapshot appended to the ring (compacting the oldest
// frozen epoch beyond the retention cap) and the next epoch starts
// empty. Returns the id of the NEW live epoch.
func (r *Ring) Rotate() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rotateLocked()
}

func (r *Ring) rotateLocked() uint64 {
	snap := r.rot.Rotate()
	r.entries = append(r.entries, Entry{ID: r.cur, Snap: snap})
	if drop := len(r.entries) - r.cfg.Retain; drop > 0 {
		r.entries = append(r.entries[:0], r.entries[drop:]...)
	}
	r.cur++
	r.pending.Store(0)
	return r.cur
}

// Current returns the live epoch id.
func (r *Ring) Current() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// ---- late reports -----------------------------------------------------------

// AddLate accumulates reports tagged with epoch id. Reports for the live
// epoch fold into the wrapped estimator under the ring lock (serialized
// with rotation, so a tagged report can never leak into the wrong
// epoch); reports for a frozen epoch follow the lateness policy. The
// return contract is est.BatchAdder's.
func (r *Ring) AddLate(id uint64, reps []est.Report) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case id > r.cur:
		return 0, fmt.Errorf("epoch: report for future epoch %d (live epoch is %d)", id, r.cur)
	case id == r.cur:
		accepted, err := est.AddReports(r.inner, reps)
		r.pending.Add(int64(accepted)) // trigger handled at next un-tagged tick or Rotate
		return accepted, err
	}
	switch r.cfg.Lateness {
	case Reject:
		return 0, fmt.Errorf("epoch: late report for epoch %d rejected (live epoch is %d)", id, r.cur)
	case Current:
		accepted, err := est.AddReports(r.inner, reps)
		r.pending.Add(int64(accepted))
		return accepted, err
	}
	// Bucket: fold through the scratch estimator so the family's own
	// validation applies, then add the drained delta into the frozen
	// snapshot. The scratch is only ever touched under r.mu.
	e := r.entryLocked(id)
	if e == nil {
		return 0, fmt.Errorf("epoch: epoch %d was compacted away (retaining %d epochs before live %d)",
			id, len(r.entries), r.cur)
	}
	accepted, err := est.AddReports(r.scratch, reps)
	if accepted > 0 {
		delta := r.scratch.(est.Rotator).Rotate()
		for i := range e.Snap.Sums {
			// Plain adds, intentionally: a frozen snapshot has no Kahan
			// lanes to resume — compensation terms do not ride the
			// checkpoint — so one uncompensated add per late batch is
			// the only fold a restored collector can reproduce bitwise.
			//hdrvet:ignore kahansum -- frozen snapshots carry no compensation lanes across checkpoints; a plain add is the reproducible fold
			e.Snap.Sums[i] += delta.Sums[i]
		}
		for i := range e.Snap.Counts {
			e.Snap.Counts[i] += delta.Counts[i]
		}
	}
	return accepted, err
}

// entryLocked returns the retained entry with the given id, or nil.
func (r *Ring) entryLocked(id uint64) *Entry {
	// Entries are contiguous ids ending at cur−1; index directly.
	if len(r.entries) == 0 {
		return nil
	}
	first := r.entries[0].ID
	if id < first || id >= first+uint64(len(r.entries)) {
		return nil
	}
	return &r.entries[id-first]
}

// ---- derived reads ----------------------------------------------------------

// WindowSnapshot folds the live epoch plus the last w−1 frozen epochs
// into one snapshot (w < 1 errors; a window wider than what is retained
// clamps to everything available, matching "the last W epochs" before W
// epochs exist). Counts add in int64 — exact; sums add plainly, oldest
// epoch first then the live epoch, a fixed deterministic order.
func (r *Ring) WindowSnapshot(w int) (est.Snapshot, error) {
	if w < 1 {
		return est.Snapshot{}, fmt.Errorf("epoch: window %d < 1", w)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.inner.Snapshot() // freshly allocated fold — safe to mutate
	frozen := w - 1
	if frozen > len(r.entries) {
		frozen = len(r.entries)
	}
	for _, e := range r.entries[len(r.entries)-frozen:] {
		for i, s := range e.Snap.Sums {
			out.Sums[i] += s
		}
		for i, c := range e.Snap.Counts {
			out.Counts[i] += c
		}
	}
	return out, nil
}

// WindowEstimate is the family estimate over the last w epochs (live
// epoch included): EstimateFrom applied to WindowSnapshot.
func (r *Ring) WindowEstimate(w int) ([]float64, error) {
	snap, err := r.WindowSnapshot(w)
	if err != nil {
		return nil, err
	}
	return r.inner.(est.SnapshotEstimator).EstimateFrom(snap)
}

// DecayedEstimate folds every retained epoch with weight gamma^age (the
// live epoch has age 0, the epoch frozen by the most recent rotation age
// 1, …) and feeds the real-valued effective sums and counts through the
// family's weighted estimate. gamma must be in (0, 1]; gamma == 1
// weights every retained epoch equally.
func (r *Ring) DecayedEstimate(gamma float64) ([]float64, error) {
	if !(gamma > 0 && gamma <= 1) || math.IsNaN(gamma) {
		return nil, fmt.Errorf("epoch: decay factor %v outside (0, 1]", gamma)
	}
	we, ok := r.inner.(est.WeightedEstimator)
	if !ok {
		return nil, fmt.Errorf("epoch: %T has no weighted estimate", r.inner)
	}
	r.mu.Lock()
	live := r.inner.Snapshot()
	sums := live.Sums // freshly allocated fold — safe to mutate
	counts := make([]float64, len(live.Counts))
	for i, c := range live.Counts {
		counts[i] = float64(c)
	}
	for _, e := range r.entries {
		w := math.Pow(gamma, float64(r.cur-e.ID))
		for i, s := range e.Snap.Sums {
			sums[i] += w * s
		}
		for i, c := range e.Snap.Counts {
			counts[i] += w * float64(c)
		}
	}
	r.mu.Unlock()
	return we.EstimateWeighted(sums, counts)
}

// ---- persistence ------------------------------------------------------------

// State returns the live epoch id and a deep copy of the frozen entries
// (oldest first) for checkpointing. The live epoch's accumulation is NOT
// included — it is the wrapped estimator's Snapshot, which the
// checkpoint captures through the ordinary est.Estimator path.
func (r *Ring) State() (cur uint64, entries []Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries = make([]Entry, len(r.entries))
	for i, e := range r.entries {
		entries[i] = Entry{ID: e.ID, Snap: cloneSnapshot(e.Snap)}
	}
	return r.cur, entries
}

// SetState restores a checkpointed ring: the live epoch id and the
// frozen entries (validated against the wrapped estimator's shape and
// required to be contiguous ids ending at cur−1). The live epoch's
// accumulation is restored separately via Merge. Entries beyond the
// retention cap are compacted, oldest first, exactly as rotation would.
func (r *Ring) SetState(cur uint64, entries []Entry) error {
	shape := r.inner.Snapshot()
	for i, e := range entries {
		if e.Snap.Kind != shape.Kind ||
			len(e.Snap.Sums) != len(shape.Sums) || len(e.Snap.Counts) != len(shape.Counts) {
			return fmt.Errorf("epoch: entry %d (epoch %d) has shape %s/%d/%d, ring wants %s/%d/%d",
				i, e.ID, e.Snap.Kind, len(e.Snap.Sums), len(e.Snap.Counts),
				shape.Kind, len(shape.Sums), len(shape.Counts))
		}
		if want := cur - uint64(len(entries)) + uint64(i); e.ID != want {
			return fmt.Errorf("epoch: entry %d has id %d, want contiguous id %d before live epoch %d",
				i, e.ID, want, cur)
		}
	}
	cp := make([]Entry, len(entries))
	for i, e := range entries {
		cp[i] = Entry{ID: e.ID, Snap: cloneSnapshot(e.Snap)}
	}
	if drop := len(cp) - r.cfg.Retain; drop > 0 {
		cp = cp[drop:]
	}
	r.mu.Lock()
	r.cur = cur
	r.entries = cp
	r.pending.Store(0)
	r.mu.Unlock()
	return nil
}

func cloneSnapshot(s est.Snapshot) est.Snapshot {
	s.Cards = append([]int(nil), s.Cards...)
	s.Sums = append([]float64(nil), s.Sums...)
	s.Counts = append([]int64(nil), s.Counts...)
	return s
}

var (
	_ est.Estimator    = (*Ring)(nil)
	_ est.BatchAdder   = (*Ring)(nil)
	_ est.LaneProvider = (*Ring)(nil)
	_ est.Enhancer     = (*Ring)(nil)
)
