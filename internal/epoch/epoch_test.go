package epoch

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/hdr4me/hdr4me/internal/est"
	"github.com/hdr4me/hdr4me/internal/freq"
	"github.com/hdr4me/hdr4me/internal/highdim"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/mathx"
	"github.com/hdr4me/hdr4me/internal/recal"
)

// meanEst builds one mean-family estimator of the fixed test shape.
func meanEst(t *testing.T) *highdim.Aggregator {
	t.Helper()
	p, err := highdim.NewProtocol(ldp.Piecewise{}, 1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	return highdim.NewAggregator(p)
}

// meanRing wraps a fresh mean estimator (plus scratch) in a ring.
func meanRing(t *testing.T, cfg Config) *Ring {
	t.Helper()
	r, err := New(meanEst(t), meanEst(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// genReports builds n deterministic perturbed mean reports.
func genReports(t *testing.T, n int, seed uint64) []est.Report {
	t.Helper()
	agg := meanEst(t)
	rng := mathx.NewRNG(seed)
	row := make([]float64, 8)
	reps := make([]est.Report, n)
	for i := range reps {
		for j := range row {
			row[j] = 2*rng.Float64() - 1
		}
		rep, err := agg.MakeReport(est.Tuple{Values: row}, rng)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	return reps
}

// closeEnough allows the documented cross-stripe/cross-epoch fold
// tolerance on sums; counts are always compared exactly.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestRotationConcurrentWithIngest is the rotation-correctness race
// test: striped ingest concurrent with rotation must conserve every
// report — Σ ring[i] + live == serial total, bitwise on counts, within
// 1e-12 on sums — no matter where the rotations cut the stream.
func TestRotationConcurrentWithIngest(t *testing.T) {
	const workers = 8
	reps := genReports(t, 4000, 11)

	serial := meanEst(t)
	for _, rep := range reps {
		if err := serial.AddReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	want := serial.Snapshot()

	ring := meanRing(t, Config{Retain: 1 << 20})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // rotate continuously while ingest runs
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ring.Rotate()
			}
		}
	}()
	var iwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		iwg.Add(1)
		go func(w int) {
			defer iwg.Done()
			lane := ring.AcquireLane()
			const chunk = 64
			for off := w * chunk; off < len(reps); off += workers * chunk {
				end := off + chunk
				if end > len(reps) {
					end = len(reps)
				}
				if acc, err := lane.AddReports(reps[off:end]); acc != end-off {
					t.Errorf("worker %d: accepted %d of %d: %v", w, acc, end-off, err)
					return
				}
			}
		}(w)
	}
	iwg.Wait()
	close(stop)
	wg.Wait()

	// Fold every frozen epoch plus the live epoch.
	_, entries := ring.State()
	got := ring.Snapshot()
	for _, e := range entries {
		for i, s := range e.Snap.Sums {
			got.Sums[i] += s
		}
		for i, c := range e.Snap.Counts {
			got.Counts[i] += c
		}
	}
	for j := range want.Counts {
		if got.Counts[j] != want.Counts[j] {
			t.Fatalf("dim %d: ring+live count %d != serial %d", j, got.Counts[j], want.Counts[j])
		}
		if !closeEnough(got.Sums[j], want.Sums[j]) {
			t.Fatalf("dim %d: ring+live sum %v != serial %v", j, got.Sums[j], want.Sums[j])
		}
	}
}

// TestWindowEquivalence is the windowed-read acceptance check: a
// windowed estimate over W epochs must equal a one-shot query fed only
// those epochs' reports — counts bitwise, sums and estimates within
// 1e-12.
func TestWindowEquivalence(t *testing.T) {
	const perEpoch = 300
	epochs := [][]est.Report{
		genReports(t, perEpoch, 1),
		genReports(t, perEpoch, 2),
		genReports(t, perEpoch, 3),
		genReports(t, perEpoch, 4),
	}

	ring := meanRing(t, Config{})
	for i, reps := range epochs {
		if acc, err := ring.AddReports(reps); acc != len(reps) {
			t.Fatalf("epoch %d: accepted %d of %d: %v", i, acc, len(reps), err)
		}
		if i < len(epochs)-1 {
			ring.Rotate()
		}
	}
	if cur := ring.Current(); cur != uint64(len(epochs)-1) {
		t.Fatalf("live epoch %d after %d rotations", cur, len(epochs)-1)
	}

	const w = 2 // the last two epochs: epochs[2] (frozen) + epochs[3] (live)
	oneShot := meanEst(t)
	for _, reps := range epochs[len(epochs)-w:] {
		if acc, err := oneShot.AddReports(reps); acc != len(reps) {
			t.Fatalf("one-shot: accepted %d of %d: %v", acc, len(reps), err)
		}
	}
	wantSnap := oneShot.Snapshot()
	gotSnap, err := ring.WindowSnapshot(w)
	if err != nil {
		t.Fatal(err)
	}
	for j := range wantSnap.Counts {
		if gotSnap.Counts[j] != wantSnap.Counts[j] {
			t.Fatalf("dim %d: window count %d != one-shot %d", j, gotSnap.Counts[j], wantSnap.Counts[j])
		}
		if !closeEnough(gotSnap.Sums[j], wantSnap.Sums[j]) {
			t.Fatalf("dim %d: window sum %v != one-shot %v", j, gotSnap.Sums[j], wantSnap.Sums[j])
		}
	}
	got, err := ring.WindowEstimate(w)
	if err != nil {
		t.Fatal(err)
	}
	want := oneShot.Estimate()
	for j := range want {
		if !closeEnough(got[j], want[j]) {
			t.Fatalf("dim %d: window estimate %v != one-shot %v", j, got[j], want[j])
		}
	}

	// A window wider than history clamps to everything retained.
	all, err := ring.WindowSnapshot(100)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, c := range all.Counts {
		n += c
	}
	if n == 0 {
		t.Fatal("clamped window folded nothing")
	}
	if _, err := ring.WindowSnapshot(0); err == nil {
		t.Fatal("window 0 accepted")
	}
}

// TestLatenessPolicies covers the three policies plus the future-epoch
// and compacted-epoch rejections.
func TestLatenessPolicies(t *testing.T) {
	late := genReports(t, 10, 21)

	t.Run("bucket", func(t *testing.T) {
		ring := meanRing(t, Config{Lateness: Bucket})
		if acc, err := ring.AddReports(genReports(t, 50, 22)); acc != 50 {
			t.Fatalf("accepted %d of 50: %v", acc, err)
		}
		ring.Rotate()
		// Tagged with the (now frozen) epoch 0: lands in its bucket.
		if acc, err := ring.AddLate(0, late); acc != len(late) || err != nil {
			t.Fatalf("late bucket add: accepted %d of %d: %v", acc, len(late), err)
		}
		_, entries := ring.State()
		if len(entries) != 1 || entries[0].Snap.Counts[0] == 0 {
			t.Fatalf("frozen epoch did not absorb late reports: %+v", entries)
		}
		var frozen int64
		for _, c := range entries[0].Snap.Counts {
			frozen += c
		}
		var livec int64
		for _, c := range ring.Counts() {
			livec += c
		}
		if livec != 0 {
			t.Fatalf("late reports leaked into the live epoch (%d counts)", livec)
		}
		// Tagged with the live epoch: serialized with rotation, lands live.
		if acc, err := ring.AddLate(1, late); acc != len(late) || err != nil {
			t.Fatalf("live-tagged add: accepted %d of %d: %v", acc, len(late), err)
		}
		// Future epoch: always an error.
		if _, err := ring.AddLate(9, late); err == nil {
			t.Fatal("future epoch accepted")
		}
	})

	t.Run("reject", func(t *testing.T) {
		ring := meanRing(t, Config{Lateness: Reject})
		ring.Rotate()
		if _, err := ring.AddLate(0, late); err == nil {
			t.Fatal("late report accepted under Reject")
		}
	})

	t.Run("current", func(t *testing.T) {
		ring := meanRing(t, Config{Lateness: Current})
		ring.Rotate()
		if acc, err := ring.AddLate(0, late); acc != len(late) || err != nil {
			t.Fatalf("late add under Current: accepted %d: %v", acc, err)
		}
		var livec int64
		for _, c := range ring.Counts() {
			livec += c
		}
		if livec == 0 {
			t.Fatal("Current policy did not fold late reports into the live epoch")
		}
	})

	t.Run("compacted", func(t *testing.T) {
		ring := meanRing(t, Config{Retain: 2, Lateness: Bucket})
		for i := 0; i < 5; i++ {
			ring.Rotate()
		}
		if _, err := ring.AddLate(0, late); err == nil || !strings.Contains(err.Error(), "compacted") {
			t.Fatalf("compacted epoch not refused: %v", err)
		}
		if _, entries := ring.State(); len(entries) != 2 {
			t.Fatalf("retention cap not enforced: %d entries", len(entries))
		}
	})
}

// TestDecayedEstimate checks γ=1 degenerates to the all-epoch window and
// a hand-computed γ-weighted fold matches.
func TestDecayedEstimate(t *testing.T) {
	ring := meanRing(t, Config{})
	for i := 0; i < 3; i++ {
		if acc, err := ring.AddReports(genReports(t, 200, uint64(31+i))); acc != 200 {
			t.Fatalf("epoch %d: accepted %d of 200: %v", i, acc, err)
		}
		if i < 2 {
			ring.Rotate()
		}
	}

	flat, err := ring.WindowEstimate(3)
	if err != nil {
		t.Fatal(err)
	}
	even, err := ring.DecayedEstimate(1)
	if err != nil {
		t.Fatal(err)
	}
	for j := range flat {
		if !closeEnough(even[j], flat[j]) {
			t.Fatalf("dim %d: γ=1 decay %v != window %v", j, even[j], flat[j])
		}
	}

	const gamma = 0.5
	got, err := ring.DecayedEstimate(gamma)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-fold: live (age 0) + frozen epochs weighted γ^age.
	live := ring.Snapshot()
	sums := append([]float64(nil), live.Sums...)
	counts := make([]float64, len(live.Counts))
	for i, c := range live.Counts {
		counts[i] = float64(c)
	}
	cur, entries := ring.State()
	for _, e := range entries {
		w := math.Pow(gamma, float64(cur-e.ID))
		for i, s := range e.Snap.Sums {
			sums[i] += w * s
		}
		for i, c := range e.Snap.Counts {
			counts[i] += w * float64(c)
		}
	}
	for j := range got {
		want := sums[j] / counts[j]
		if !closeEnough(got[j], want) {
			t.Fatalf("dim %d: decay %v != hand fold %v", j, got[j], want)
		}
	}

	for _, bad := range []float64{0, -1, 1.5, math.NaN()} {
		if _, err := ring.DecayedEstimate(bad); err == nil {
			t.Fatalf("decay factor %v accepted", bad)
		}
	}
}

// TestReportCountTrigger: Every=n rotates automatically after n accepted
// reports through any ingest surface, and never on rejected ones.
func TestReportCountTrigger(t *testing.T) {
	ring := meanRing(t, Config{Every: 100})
	lane := ring.AcquireLane()
	reps := genReports(t, 250, 41)
	for off := 0; off < len(reps); off += 50 {
		if acc, err := lane.AddReports(reps[off : off+50]); acc != 50 {
			t.Fatalf("accepted %d of 50: %v", acc, err)
		}
	}
	if cur := ring.Current(); cur != 2 {
		t.Fatalf("250 reports with Every=100 left live epoch at %d, want 2", cur)
	}
	// Malformed reports are rejected by the family and must not tick.
	before := ring.Current()
	if err := ring.AddReport(est.Report{Dims: []uint32{0}, Values: []float64{0.1, 0.2}}); err == nil {
		t.Fatal("malformed report accepted")
	}
	if ring.Current() != before {
		t.Fatal("rejected report advanced the rotation trigger")
	}
}

// TestSetStateRoundTrip checks State/SetState restore the ring exactly
// and refuse malformed states.
func TestSetStateRoundTrip(t *testing.T) {
	ring := meanRing(t, Config{})
	for i := 0; i < 3; i++ {
		if acc, err := ring.AddReports(genReports(t, 100, uint64(51+i))); acc != 100 {
			t.Fatalf("accepted %d of 100: %v", acc, err)
		}
		ring.Rotate()
	}
	cur, entries := ring.State()

	restored := meanRing(t, Config{})
	if err := restored.SetState(cur, entries); err != nil {
		t.Fatal(err)
	}
	rcur, rentries := restored.State()
	if rcur != cur || len(rentries) != len(entries) {
		t.Fatalf("restored %d/%d epochs, want %d/%d", rcur, len(rentries), cur, len(entries))
	}
	for i := range entries {
		if rentries[i].ID != entries[i].ID {
			t.Fatalf("entry %d: id %d != %d", i, rentries[i].ID, entries[i].ID)
		}
		for j := range entries[i].Snap.Sums {
			if rentries[i].Snap.Sums[j] != entries[i].Snap.Sums[j] {
				t.Fatalf("entry %d dim %d: sum not bitwise-equal", i, j)
			}
		}
		for j := range entries[i].Snap.Counts {
			if rentries[i].Snap.Counts[j] != entries[i].Snap.Counts[j] {
				t.Fatalf("entry %d dim %d: count differs", i, j)
			}
		}
	}

	// Wrong shape and non-contiguous ids are refused.
	bad := meanRing(t, Config{})
	if err := bad.SetState(2, []Entry{{ID: 0, Snap: est.Snapshot{Kind: "freq"}}}); err == nil {
		t.Fatal("wrong-kind entry accepted")
	}
	if err := bad.SetState(5, []Entry{{ID: 1, Snap: entries[0].Snap}, {ID: 3, Snap: entries[1].Snap}}); err == nil {
		t.Fatal("non-contiguous entry ids accepted")
	}
}

// TestRingDelegation: the ring keeps the wrapped estimator's surface —
// kind, dims, merge, enhanced error shape — and New rejects estimators
// that cannot rotate.
func TestRingDelegation(t *testing.T) {
	f, err := freq.NewFlat(freq.Protocol{Mech: ldp.Laplace{}, Eps: 2, Cards: []int{3, 4}, M: 2}, recal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := freq.NewFlat(freq.Protocol{Mech: ldp.Laplace{}, Eps: 2, Cards: []int{3, 4}, M: 2}, recal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := New(f, scratch, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Kind() != f.Kind() || ring.Dims() != f.Dims() {
		t.Fatalf("ring surface %s/%d != inner %s/%d", ring.Kind(), ring.Dims(), f.Kind(), f.Dims())
	}
	if _, err := ring.Enhanced(); err != nil {
		t.Fatalf("freq ring lost the enhanced read path: %v", err)
	}
	rng := mathx.NewRNG(7)
	if err := ring.Observe(est.Tuple{Cats: []int{1, 2}}, rng); err != nil {
		t.Fatal(err)
	}
	ring.Rotate()
	if _, entries := ring.State(); len(entries) != 1 || len(entries[0].Snap.Cards) != 2 {
		t.Fatalf("freq rotation lost the cards: %+v", entries)
	}

	if _, err := New(nil, nil, Config{}); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := New(meanEst(t), nil, Config{Lateness: Bucket}); err == nil {
		t.Fatal("Bucket policy without scratch accepted")
	}
	if _, err := New(meanEst(t), meanEst(t), Config{Every: -1}); err == nil {
		t.Fatal("negative trigger accepted")
	}
}

// TestParsePolicy round-trips the flag names.
func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{Bucket, Reject, Current} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
