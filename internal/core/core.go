// Package core re-exports the paper's primary contribution — the §IV
// analytical framework and the §V HDR4ME re-calibration protocol — under a
// single import, per the repository layout convention. New code should
// prefer the richer internal/analysis and internal/recal packages (or the
// root hdr4me facade) directly; core exists so the contribution is
// discoverable in one place.
package core

import (
	"github.com/hdr4me/hdr4me/internal/analysis"
	"github.com/hdr4me/hdr4me/internal/recal"
)

// Framework is the §IV analytical framework (Lemmas 2/3, Theorems 1/2).
type Framework = analysis.Framework

// Deviation is the per-dimension Gaussian law of θ̂ⱼ − θ̄ⱼ.
type Deviation = analysis.Deviation

// JointDeviation is the Theorem 1 multivariate law.
type JointDeviation = analysis.JointDeviation

// DataSpec is the Lemma 3 data model for bounded mechanisms.
type DataSpec = analysis.DataSpec

// Config parameterizes one HDR4ME application; Reg selects L1/L2.
type (
	Config = recal.Config
	Reg    = recal.Reg
)

// Regularizer flavors.
const (
	RegNone = recal.RegNone
	RegL1   = recal.RegL1
	RegL2   = recal.RegL2
)

// Enhance applies HDR4ME (Eqs. 34/42) to a naive aggregation.
func Enhance(est []float64, devs []Deviation, cfg Config) []float64 {
	return recal.Enhance(est, devs, cfg)
}

// SoftThreshold and Shrink are the one-off closed-form solvers.
var (
	SoftThreshold = recal.SoftThreshold
	Shrink        = recal.Shrink
)

// BerryEsseen is the Theorem 2 approximation-error bound.
var BerryEsseen = analysis.BerryEsseen

// ShouldEnhance is the Theorem 3/4 pre-flight check for enabling HDR4ME.
var ShouldEnhance = recal.ShouldEnhance
