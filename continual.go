// Continual collection: the epoch subsystem surfaced at the facade.
// A continual session (or collector query) wraps its estimator in an
// epoch.Ring — the live epoch accumulates as before, and rotation
// (wall-clock, report-count, or explicit) freezes it into a bounded ring
// of per-epoch snapshots. Derived read paths answer the questions a
// one-shot estimate cannot: the current epoch alone, a sliding window
// over the last W epochs, or an exponentially decayed estimate that
// forgets old traffic smoothly. With an Accountant renewal horizon, the
// privacy guarantee is scoped to any window of h consecutive epochs and
// budgets renew as epochs expire (see Accountant's per-epoch renewal
// notes).
package hdr4me

import (
	"fmt"
	"time"

	"github.com/hdr4me/hdr4me/internal/epoch"
	"github.com/hdr4me/hdr4me/internal/est"
)

// LatenessPolicy says what a continual collector does with a report
// tagged with an epoch that is no longer the live one.
type LatenessPolicy = epoch.Policy

const (
	// LateBucket (default): fold the late report into its frozen epoch
	// while that epoch is retained; reject it once compacted away.
	LateBucket = epoch.Bucket
	// LateReject: refuse every report not tagged with the live epoch.
	LateReject = epoch.Reject
	// LateCurrent: fold late reports into the live epoch — counted, but
	// per-epoch attribution is lost.
	LateCurrent = epoch.Current
)

// ParseLatenessPolicy parses a policy name ("bucket", "reject",
// "current") — the ldpcollect -lateness flag values.
func ParseLatenessPolicy(s string) (LatenessPolicy, error) { return epoch.ParsePolicy(s) }

// EpochConfig bundles the continual-collection knobs of a multi-query
// collector (NewEpochQueryRegistry).
type EpochConfig struct {
	// Every rotates a query after this many accepted reports (0: only
	// explicit rotation — RotateCollector, the ROTATE wire frame — does).
	Every int64
	// Retain caps the frozen epochs each query keeps (<1: the epoch
	// package default).
	Retain int
	// Lateness picks the late-report policy (zero value: LateBucket).
	Lateness LatenessPolicy
	// Horizon, when positive, switches the accountant to per-epoch budget
	// renewal over windows of this many epochs.
	Horizon int
}

// NewEpochQueryRegistry is NewQueryRegistry for continual collection:
// every query the factory builds is an epoch ring around the ordinary
// family estimator, and — when cfg.Horizon is positive — acct switches
// to the per-epoch renewal ledger. Call RotateCollector once per
// collector epoch to rotate every query and renew the budget together.
func NewEpochQueryRegistry(acct *Accountant, cfg EpochConfig) (*Registry, error) {
	ecfg := epoch.Config{Every: cfg.Every, Retain: cfg.Retain, Lateness: cfg.Lateness}
	factory := func(spec est.QuerySpec) (est.Estimator, error) {
		inner, err := estimatorForSpec(spec)
		if err != nil {
			return nil, err
		}
		var scratch est.Estimator
		if ecfg.Lateness == epoch.Bucket {
			if scratch, err = estimatorForSpec(spec); err != nil {
				return nil, err
			}
		}
		return epoch.New(inner, scratch, ecfg)
	}
	if cfg.Horizon > 0 {
		if acct == nil {
			return nil, fmt.Errorf("hdr4me: a renewal horizon needs an accountant (budget to renew against)")
		}
		if err := acct.EnableRenewal(cfg.Horizon); err != nil {
			return nil, err
		}
	}
	if acct == nil {
		return est.NewRegistry(factory, nil), nil
	}
	return est.NewRegistry(factory, acct), nil
}

// RotateCollector advances a continual collector one epoch: every
// non-deleted continual query's live epoch freezes into its ring, and —
// when acct runs a renewal horizon — the budget ledger renews once.
// Rotation and renewal share one clock by construction: call this from
// the collector's epoch ticker (and once more on drain), never per
// query.
func RotateCollector(reg *Registry, acct *Accountant) {
	for _, q := range reg.All() {
		if q.State() == QueryDeleted {
			continue
		}
		if ring, ok := q.Estimator().(*epoch.Ring); ok {
			ring.Rotate()
		}
	}
	if acct != nil && acct.Horizon() > 0 {
		acct.Renew()
	}
}

// ---- session options --------------------------------------------------------

// WithEpochDuration makes the session continual with a wall-clock epoch:
// a background ticker rotates the ring every d until Close.
func WithEpochDuration(d time.Duration) Option {
	return func(c *sessionConfig) error {
		if d <= 0 {
			return fmt.Errorf("hdr4me: epoch duration %v must be positive", d)
		}
		c.epochDur = d
		c.epochs = true
		return nil
	}
}

// WithEpochEvery makes the session continual with a report-count epoch:
// the ring rotates after every n accepted reports.
func WithEpochEvery(n int64) Option {
	return func(c *sessionConfig) error {
		if n < 1 {
			return fmt.Errorf("hdr4me: epoch report-count trigger %d must be positive", n)
		}
		c.epochEvery = n
		c.epochs = true
		return nil
	}
}

// WithWindow makes the session continual and sets the default width of
// WindowEstimate: the last w epochs, live epoch included. Retention is
// raised to cover the window when needed.
func WithWindow(w int) Option {
	return func(c *sessionConfig) error {
		if w < 1 {
			return fmt.Errorf("hdr4me: window of %d epochs must be positive", w)
		}
		c.window = w
		c.epochs = true
		return nil
	}
}

// WithDecay makes the session continual and sets the default decay rate
// of DecayedEstimate: the epoch k behind the live one is weighted
// gamma^k. gamma must be in (0, 1]; 1 weighs every retained epoch
// equally.
func WithDecay(gamma float64) Option {
	return func(c *sessionConfig) error {
		if !(gamma > 0 && gamma <= 1) {
			return fmt.Errorf("hdr4me: decay rate %v must be in (0, 1]", gamma)
		}
		c.decay = gamma
		c.epochs = true
		return nil
	}
}

// WithLateness makes the session continual and picks its late-report
// policy (default LateBucket).
func WithLateness(p LatenessPolicy) Option {
	return func(c *sessionConfig) error {
		if p != LateBucket && p != LateReject && p != LateCurrent {
			return fmt.Errorf("hdr4me: unknown lateness policy %d", p)
		}
		c.lateness = p
		c.epochs = true
		return nil
	}
}

// WithEpochRetain makes the session continual and caps how many frozen
// epochs its ring keeps (default: the epoch package default, or the
// WithWindow width when larger).
func WithEpochRetain(n int) Option {
	return func(c *sessionConfig) error {
		if n < 1 {
			return fmt.Errorf("hdr4me: epoch retention %d must be positive", n)
		}
		c.epochRetain = n
		c.epochs = true
		return nil
	}
}

// ---- session surface --------------------------------------------------------

// ServingEstimator returns the estimator to expose over the wire: the
// epoch ring for a continual session (so routed EPOCH/WINDOW/DECAY/
// ROTATE frames work), the plain estimator otherwise.
func (s *Session) ServingEstimator() Estimator {
	if s.ring != nil {
		return s.ring
	}
	return s.est
}

// Continual reports whether the session collects in epochs.
func (s *Session) Continual() bool { return s.ring != nil }

// CurrentEpoch returns the live epoch id (0 for one-shot sessions,
// which never rotate).
func (s *Session) CurrentEpoch() uint64 {
	if s.ring == nil {
		return 0
	}
	return s.ring.Current()
}

// Rotate freezes the live epoch into the ring and returns the new live
// epoch id. It errors on one-shot sessions.
func (s *Session) Rotate() (uint64, error) {
	if s.ring == nil {
		return 0, fmt.Errorf("hdr4me: session is not continual (use WithEpochDuration or WithEpochEvery)")
	}
	return s.ring.Rotate(), nil
}

// WindowEstimate estimates over the last w epochs, live epoch included;
// w <= 0 selects the WithWindow default. The result over W epochs
// matches a one-shot collection fed only those epochs' reports.
func (s *Session) WindowEstimate(w int) ([]float64, error) {
	if s.ring == nil {
		return nil, fmt.Errorf("hdr4me: session is not continual (use WithWindow)")
	}
	if w <= 0 {
		if w = s.cfg.window; w <= 0 {
			return nil, fmt.Errorf("hdr4me: no window width (pass w > 0 or build the session WithWindow)")
		}
	}
	return s.ring.WindowEstimate(w)
}

// DecayedEstimate returns the exponentially decayed estimate; gamma <= 0
// selects the WithDecay default.
func (s *Session) DecayedEstimate(gamma float64) ([]float64, error) {
	if s.ring == nil {
		return nil, fmt.Errorf("hdr4me: session is not continual (use WithDecay)")
	}
	if gamma <= 0 {
		if gamma = s.cfg.decay; gamma <= 0 {
			return nil, fmt.Errorf("hdr4me: no decay rate (pass gamma in (0,1] or build the session WithDecay)")
		}
	}
	return s.ring.DecayedEstimate(gamma)
}

// buildRing wraps the session's freshly built estimator in an epoch
// ring, constructing the scratch estimator the Bucket lateness policy
// folds late reports through. Called from New when any epoch option is
// set.
func (s *Session) buildRing(e Estimator) (*epoch.Ring, error) {
	c := &s.cfg
	if c.custom != nil {
		// buildEstimator would hand back the same injected instance as
		// "scratch", and rotation semantics of an arbitrary estimator are
		// unknowable here.
		return nil, fmt.Errorf("hdr4me: epoch options cannot wrap a custom estimator")
	}
	var scratch Estimator
	if c.lateness == LateBucket {
		var err error
		if scratch, err = buildEstimator(c); err != nil {
			return nil, err
		}
	}
	retain := c.epochRetain
	if retain < c.window {
		// A w-epoch window needs w-1 frozen epochs; keep the whole window.
		retain = c.window
	}
	return epoch.New(e, scratch, epoch.Config{
		Every:    c.epochEvery,
		Retain:   retain,
		Lateness: c.lateness,
	})
}
