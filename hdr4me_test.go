package hdr4me

import (
	"math"
	"sync"
	"testing"

	"github.com/hdr4me/hdr4me/internal/core"
)

func TestFacadeEndToEndMeanEstimation(t *testing.T) {
	// The doc.go quickstart, verbatim as a test.
	ds := Memoize(NewGaussianDataset(20_000, 50, 1))
	p, err := NewProtocol(Piecewise(), 0.8, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Simulate(p, ds, NewRNG(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	naive := agg.Estimate()
	enhanced, err := EnhanceWithFramework(p, ds, naive, DefaultEnhanceConfig(RegL1))
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.TrueMean()
	nm, em := MSE(naive, truth), MSE(enhanced, truth)
	if em >= nm {
		t.Fatalf("HDR4ME did not improve: naive %v, enhanced %v", nm, em)
	}
	// Eq. 2/3 identity through the facade.
	l2 := L2Deviation(naive, truth)
	if math.Abs(nm-l2*l2/50)/nm > 1e-9 {
		t.Fatalf("MSE/L2 identity broken: %v vs %v", nm, l2*l2/50)
	}
}

func TestFacadeMechanismRegistry(t *testing.T) {
	names := []string{"laplace", "piecewise", "squarewave", "duchi", "hybrid", "staircase", "scdf"}
	for _, n := range names {
		m, err := MechanismByName(n)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		x := m.Perturb(NewRNG(1), 0.3, 1)
		if math.IsNaN(x) {
			t.Errorf("%s produced NaN", n)
		}
	}
	if len(EvaluatedMechanisms()) != 3 {
		t.Error("EvaluatedMechanisms should return 3")
	}
	ctors := []func() Mechanism{Laplace, Piecewise, SquareWave, Duchi, Hybrid, Staircase, SCDF}
	for _, c := range ctors {
		if c() == nil {
			t.Error("nil mechanism from constructor")
		}
	}
}

func TestFacadeFrameworkAndTableII(t *testing.T) {
	fw := NewFramework(Laplace(), 0.01, 10_000)
	dev := fw.Deviation(nil)
	if dev.Sigma2 <= 0 {
		t.Fatal("bad deviation")
	}
	j := Homogeneous(100, dev)
	if lb := j.Theorem3LowerBound(); lb <= 0.99 {
		t.Errorf("Theorem 3 bound %v in a heavy-noise regime", lb)
	}
	rows := CaseStudyTableII()
	if len(rows) != 4 || rows[0].Winner != "Piecewise" || rows[3].Winner != "Square" {
		t.Fatalf("Table II = %+v", rows)
	}
	if BerryEsseen(3, 1, 0) != math.Inf(1) {
		t.Error("BerryEsseen degenerate case")
	}
}

func TestFacadeSpecsAndEnhance(t *testing.T) {
	spec := SpecFromSamples([]float64{0.1, 0.2, 0.3, 0.4}, 2)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	spec2 := SpecFromCounts([]float64{0.5, 0.5, -0.5})
	if len(spec2.Values) != 2 {
		t.Fatalf("counts spec = %+v", spec2)
	}
	out := Enhance([]float64{5, -5}, []Deviation{{Delta: 0, Sigma2: 1}}, DefaultEnhanceConfig(RegL1))
	if out[0] >= 5 || out[1] <= -5 {
		t.Fatalf("enhance did nothing: %v", out)
	}
	if RegNone.String() != "none" || RegL1.String() != "L1" || RegL2.String() != "L2" {
		t.Error("Reg strings")
	}
}

func TestFacadeEnhanceWithFrameworkValidates(t *testing.T) {
	ds := NewUniformDataset(100, 5, 1)
	bad := Protocol{Mech: Laplace(), Eps: -1, D: 5, M: 5}
	if _, err := EnhanceWithFramework(bad, ds, make([]float64, 5), DefaultEnhanceConfig(RegL1)); err == nil {
		t.Fatal("invalid protocol must error")
	}
}

func TestFacadeNetworkedCollection(t *testing.T) {
	p, err := NewProtocol(Laplace(), 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCollectorServer(NewAggregator(p))
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ds := NewUniformDataset(500, 4, 3)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := DialCollector(addr.String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			client := NewClient(p, NewRNG(50).Child(uint64(c)))
			row := make([]float64, 4)
			for i := c; i < 500; i += 4 {
				ds.Row(i, row)
				if err := cl.Send(client.Report(row)); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	cl, err := DialCollector(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	est, err := cl.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 4 {
		t.Fatalf("estimate dims = %d", len(est))
	}
}

func TestCorePackageReexports(t *testing.T) {
	dev := core.Deviation{Delta: 0, Sigma2: 4}
	out := core.Enhance([]float64{10}, []core.Deviation{dev}, core.Config{Reg: core.RegL1, Conf: 0.99})
	if out[0] >= 10 {
		t.Fatal("core.Enhance inert")
	}
	if core.SoftThreshold([]float64{3}, []float64{1})[0] != 2 {
		t.Fatal("core.SoftThreshold")
	}
	if core.Shrink([]float64{3}, []float64{1})[0] != 1 {
		t.Fatal("core.Shrink")
	}
	fw := core.Framework{}
	_ = fw
	if core.BerryEsseen(3, 1, 100) <= 0 {
		t.Fatal("core.BerryEsseen")
	}
	if core.RegNone.String() != "none" {
		t.Fatal("core reg alias")
	}
}

func TestFacadeTrueMean(t *testing.T) {
	ds := NewUniformDataset(5000, 3, 9)
	mean := TrueMean(ds)
	for _, m := range mean {
		if math.Abs(m) > 0.05 {
			t.Fatalf("uniform mean %v", m)
		}
	}
}
