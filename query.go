// Multi-query collector surface: named queries described by QuerySpecs,
// hosted in a Registry behind one TCP port, budget-gated by an
// Accountant, and driven remotely through client-side Query handles. One
// CollectorServer serves any number of concurrent analytics — means over
// different attribute sets, whole-tuple distributions, frequencies —
// against the same user population, with the per-user privacy spend
// accounted across all of them.
package hdr4me

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/hdr4me/hdr4me/internal/est"
	"github.com/hdr4me/hdr4me/internal/transport"
)

// QuerySpec describes one named analytics query: family kind, mechanism,
// per-user budget ε, and dimensions. The same spec drives an in-process
// Session (NewFromSpec), a registry entry (Registry.Open), and a remote
// registration (CollectorClient.Open → the OPENQUERY wire frame).
type QuerySpec = est.QuerySpec

// Registry is the named-query table a multi-query collector serves; build
// one with NewQueryRegistry. Each entry walks the lifecycle open (reports
// accepted) → sealed (estimates only) → deleted (name freed).
type Registry = est.Registry

// RegisteredQuery is one live Registry entry: a named estimator plus its
// lifecycle state.
type RegisteredQuery = est.Query

// Query lifecycle states (RegisteredQuery.State).
const (
	QueryOpen    = est.StateOpen
	QuerySealed  = est.StateSealed
	QueryDeleted = est.StateDeleted
)

// CollectorQuery is the client-side handle on one named query of a remote
// collector: its exchanges ride SELECT-routed wire frames, so one
// connection serves many queries.
type CollectorQuery = transport.Query

// DefaultQueryName is the query legacy (un-routed) clients talk to.
const DefaultQueryName = est.DefaultName

// NewQueryRegistry returns an empty registry whose estimators are built
// from QuerySpecs by the same family construction Sessions use. acct,
// when non-nil, gates every registration against the per-user privacy
// budget; nil disables accounting.
func NewQueryRegistry(acct *Accountant) *Registry {
	if acct == nil {
		return est.NewRegistry(estimatorForSpec, nil)
	}
	return est.NewRegistry(estimatorForSpec, acct)
}

// NewRegistryServer wraps a registry of named queries in a TCP collector:
// one port, many concurrent analytics. Legacy un-routed frames resolve to
// the DefaultQueryName entry, if registered.
func NewRegistryServer(reg *Registry) *CollectorServer {
	return transport.NewRegistryServer(reg)
}

// DialCollectorContext connects to a collector at addr under ctx: a
// cancelled or expired context aborts the dial.
func DialCollectorContext(ctx context.Context, addr string, opts ...CollectorClientOption) (*CollectorClient, error) {
	return transport.DialContext(ctx, addr, opts...)
}

// estimatorForSpec is the registry factory: one validated QuerySpec in,
// one fresh estimator out, via the session configuration machinery.
func estimatorForSpec(spec est.QuerySpec) (est.Estimator, error) {
	cfg := sessionConfig{seed: 1}
	if err := applySpec(&cfg, spec); err != nil {
		return nil, err
	}
	return buildEstimator(&cfg)
}

// applySpec translates a normalized spec into a session configuration.
func applySpec(c *sessionConfig, spec QuerySpec) error {
	spec = spec.Normalize()
	named := spec
	if named.Name == "" {
		named.Name = "session" // Validate requires a name; sessions have none
	}
	if err := named.Validate(); err != nil {
		return err
	}
	c.eps = spec.Eps
	switch spec.Kind {
	case KindWholeTuple:
		c.wholeTuple = true
		c.d, c.m = spec.D, spec.D
		return nil
	case KindFreq:
		c.cards = append([]int(nil), spec.Cards...)
		c.d, c.m = len(spec.Cards), spec.M
	default:
		c.d, c.m = spec.D, spec.M
	}
	mech, err := MechanismByName(spec.Mech)
	if err != nil {
		return fmt.Errorf("hdr4me: query %q: %w", spec.Name, err)
	}
	c.mech = mech
	return nil
}

// WithSpec configures a session from a QuerySpec — the converse of
// Session.Spec, and the bridge that lets one spec drive both the
// in-process pipeline and a remote query. Later options still apply on
// top (seed, workers, enhancement).
func WithSpec(spec QuerySpec) Option {
	return func(c *sessionConfig) error {
		return applySpec(c, spec)
	}
}

// NewFromSpec builds a Session from a QuerySpec plus optional extra
// options: NewFromSpec(spec, WithSeed(7)) ≡ New(WithSpec(spec),
// WithSeed(7)).
func NewFromSpec(spec QuerySpec, opts ...Option) (*Session, error) {
	return New(append([]Option{WithSpec(spec)}, opts...)...)
}

// Spec reconstructs the QuerySpec describing this session's estimator
// (Name left empty — set it before registering the spec). It errors for
// sessions whose configuration a QuerySpec cannot express: a custom
// injected estimator, or a per-dimension budget allocation — a spec
// built by silently dropping either would stand up a collector that
// debiases with the wrong budgets.
func (s *Session) Spec() (QuerySpec, error) {
	c := &s.cfg
	if c.custom != nil {
		return QuerySpec{}, fmt.Errorf("hdr4me: a custom estimator (kind %s) has no QuerySpec", c.custom.Kind())
	}
	if c.alloc != nil {
		return QuerySpec{}, fmt.Errorf("hdr4me: a per-dimension budget allocation cannot be expressed in a QuerySpec")
	}
	spec := QuerySpec{Eps: c.eps, D: c.d, M: c.m}
	switch {
	case c.wholeTuple:
		spec.Kind = KindWholeTuple
	case c.cards != nil:
		spec.Kind = KindFreq
		spec.D = 0
		spec.Cards = append([]int(nil), c.cards...)
		if c.mech != nil {
			spec.Mech = c.mech.Name()
		}
	default:
		spec.Kind = KindMean
		if c.mech != nil {
			spec.Mech = c.mech.Name()
		}
	}
	return spec.Normalize(), nil
}

// ParseQuerySpec parses the compact textual spec format of the
// ldpcollect -query flag:
//
//	name,kind=mean,mech=piecewise,eps=0.8,d=16,m=8
//	pets,kind=freq,mech=squarewave,eps=0.4,cards=3x4x5,m=2
//	vitals,kind=wholetuple,eps=0.5,d=4
//
// The first comma-separated token is the query name; the rest are k=v
// pairs. kind defaults to mean (freq when cards is given), m to the
// family default.
func ParseQuerySpec(s string) (QuerySpec, error) {
	var spec QuerySpec
	fields := strings.Split(s, ",")
	if fields[0] == "" || strings.Contains(fields[0], "=") {
		return spec, fmt.Errorf("hdr4me: query spec %q must start with the query name", s)
	}
	spec.Name = fields[0]
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok || v == "" {
			return spec, fmt.Errorf("hdr4me: query spec %q: %q is not a k=v pair", s, f)
		}
		var err error
		switch k {
		case "kind":
			spec.Kind = v
		case "mech":
			spec.Mech = v
		case "eps":
			spec.Eps, err = strconv.ParseFloat(v, 64)
		case "d":
			spec.D, err = strconv.Atoi(v)
		case "m":
			spec.M, err = strconv.Atoi(v)
		case "cards":
			for _, c := range strings.Split(v, "x") {
				card, cerr := strconv.Atoi(c)
				if cerr != nil {
					err = cerr
					break
				}
				spec.Cards = append(spec.Cards, card)
			}
		default:
			return spec, fmt.Errorf("hdr4me: query spec %q: unknown key %q", s, k)
		}
		if err != nil {
			return spec, fmt.Errorf("hdr4me: query spec %q: bad %s: %v", s, k, err)
		}
	}
	spec = spec.Normalize()
	return spec, spec.Validate()
}
