module github.com/hdr4me/hdr4me

go 1.24
