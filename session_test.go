package hdr4me

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestSessionMeanFamilyRun(t *testing.T) {
	ds := Memoize(NewGaussianDataset(20_000, 50, 1))
	s, err := New(
		WithMechanism(Piecewise()),
		WithBudget(0.8),
		WithDims(50, 50),
		WithEnhance(DefaultEnhanceConfig(RegL1)),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != KindMean {
		t.Fatalf("kind = %q", s.Kind())
	}
	res, err := s.Run(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.TrueMean()
	// ε/m = 0.016 is the paper's heavy-noise regime: the naive MSE is ≈1
	// by design; what matters is that HDR4ME improves on it.
	nm := MSE(res.Naive, truth)
	if nm > 5 {
		t.Fatalf("naive MSE = %v", nm)
	}
	if res.Enhanced == nil {
		t.Fatal("WithEnhance must populate Enhanced")
	}
	if em := MSE(res.Enhanced, truth); em >= nm {
		t.Fatalf("enhancement did not improve: naive %v, enhanced %v", nm, em)
	}
	var total int64
	for _, c := range res.Counts {
		total += c
	}
	if total != 20_000*50 {
		t.Fatalf("report count = %d", total)
	}
}

func TestSessionWholeTupleFamilyRun(t *testing.T) {
	ds := Memoize(NewGaussianDataset(20_000, 8, 63))
	// WithEnhance on a family without an enhancement path must not poison
	// Run: the round completes and Enhanced stays nil.
	s, err := New(WithWholeTuple(), WithBudget(4), WithDims(8, 0), WithSeed(3),
		WithEnhance(DefaultEnhanceConfig(RegL1)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != KindWholeTuple {
		t.Fatalf("kind = %q", s.Kind())
	}
	res, err := s.Run(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Enhanced != nil {
		t.Fatal("whole-tuple Enhanced must stay nil")
	}
	if mse := MSE(res.Naive, ds.TrueMean()); mse > 0.01 {
		t.Fatalf("whole-tuple MSE = %v", mse)
	}
	if _, err := s.EstimateEnhanced(); err == nil {
		t.Fatal("whole-tuple family must report no enhancement path")
	}
	if _, err := s.EstimateEnhancedWith(DefaultEnhanceConfig(RegL2)); err == nil {
		t.Fatal("EstimateEnhancedWith must refuse the whole-tuple family")
	}
}

func TestSessionFreqFamilyRun(t *testing.T) {
	cards := []int{3, 5, 4}
	ds := NewZipfCatDataset(30_000, cards, 1.2, 9)
	s, err := New(
		WithMechanism(Laplace()),
		WithBudget(4),
		WithCards(cards),
		WithDims(3, 2),
		WithEnhance(DefaultEnhanceConfig(RegL1)),
		WithSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != KindFreq {
		t.Fatalf("kind = %q", s.Kind())
	}
	res, err := s.Run(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Naive) != 3+5+4 {
		t.Fatalf("flattened estimate has %d entries", len(res.Naive))
	}
	if res.Enhanced == nil {
		t.Fatal("freq enhancement missing")
	}
	// Re-calibrating the same round under another configuration must not
	// need a second collection.
	guarded := DefaultEnhanceConfig(RegL1)
	guarded.Guarded = true
	alt, err := s.EstimateEnhancedWith(guarded)
	if err != nil {
		t.Fatal(err)
	}
	if len(alt) != 3+5+4 {
		t.Fatalf("rebound enhancement width %d", len(alt))
	}
	freqs, err := s.Freqs(res.Naive)
	if err != nil {
		t.Fatal(err)
	}
	ProjectSimplex(freqs)
	truth := TrueFreqs(ds)
	for j := range truth {
		var sum, mse float64
		for k := range truth[j] {
			sum += freqs[j][k]
			d := freqs[j][k] - truth[j][k]
			mse += d * d
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("dimension %d sums to %v", j, sum)
		}
		if mse/float64(len(truth[j])) > 0.01 {
			t.Fatalf("dimension %d frequency MSE %v", j, mse/float64(len(truth[j])))
		}
	}
}

func TestSessionAllocationRun(t *testing.T) {
	ds := NewUniformDataset(2000, 4, 65)
	alloc, err := OptimalMSEAllocation(1, []float64{1, 1, 8, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(
		WithMechanism(Laplace()),
		WithBudget(1),
		WithDims(4, 2),
		WithAllocation(alloc),
		WithWorkers(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Naive) != 4 {
		t.Fatalf("estimate width %d", len(res.Naive))
	}
}

func TestSessionRunContextCancellation(t *testing.T) {
	// A population large enough that a full round takes far longer than
	// the cancellation budget.
	ds := NewGaussianDataset(5_000_000, 200, 2)
	s, err := New(WithMechanism(Piecewise()), WithBudget(0.8), WithDims(200, 200))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.Run(ctx, ds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestSessionSnapshotMergeComposesShards(t *testing.T) {
	// Two shard sessions over disjoint halves must merge into the same
	// counts a single full round produces, and the merged estimate must be
	// a sane mean estimate — the composition law distributed collectors
	// rely on.
	const n, d = 4000, 10
	ds := Memoize(NewGaussianDataset(n, d, 21))
	mk := func(seed uint64) *Session {
		s, err := New(WithMechanism(Laplace()), WithBudget(4), WithDims(d, d), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	shardA, shardB, central := mk(1), mk(2), mk(3)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		ds.Row(i, row)
		t2 := Tuple{Values: row}
		var err error
		if i%2 == 0 {
			err = shardA.Observe(t2)
		} else {
			err = shardB.Observe(t2)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := central.Merge(shardA.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := central.Merge(shardB.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for j, c := range central.Counts() {
		if c != n {
			t.Fatalf("dimension %d merged count %d, want %d", j, c, n)
		}
	}
	if mse := MSE(central.Estimate(), ds.TrueMean()); mse > 0.05 {
		t.Fatalf("merged estimate MSE %v", mse)
	}
	// Family mismatches must be rejected.
	other, err := New(WithWholeTuple(), WithBudget(1), WithDims(d, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := central.Merge(other.Snapshot()); err == nil {
		t.Fatal("cross-family merge must fail")
	}
}

// TestSessionConcurrentUse interleaves every Session operation from many
// goroutines; run under -race this is the satellite concurrency check.
func TestSessionConcurrentUse(t *testing.T) {
	const d = 6
	s, err := New(WithMechanism(Laplace()), WithBudget(2), WithDims(d, 2),
		WithEnhance(DefaultEnhanceConfig(RegL2)))
	if err != nil {
		t.Fatal(err)
	}
	peer, err := New(WithMechanism(Laplace()), WithBudget(2), WithDims(d, 2), WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	ds := NewUniformDataset(64, d, 5)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) { // streaming raw tuples
			defer wg.Done()
			row := make([]float64, d)
			for i := 0; i < 200; i++ {
				ds.Row((g*200+i)%64, row)
				if err := s.Observe(Tuple{Values: row}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) { // streaming pre-perturbed reports
			defer wg.Done()
			rng := NewRNG(uint64(1000 + g))
			for i := 0; i < 200; i++ {
				rep := Report{
					Dims:   []uint32{uint32(i % d), uint32(d - 1)},
					Values: []float64{rng.Uniform(-1, 1), rng.Uniform(-1, 1)},
				}
				if rep.Dims[0] == rep.Dims[1] {
					rep = Report{Dims: rep.Dims[:1], Values: rep.Values[:1]}
				}
				if err := s.AddReport(rep); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
		wg.Add(1)
		go func() { // readers
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if got := s.Estimate(); len(got) != d {
					t.Errorf("estimate width %d", len(got))
					return
				}
				if _, err := s.EstimateEnhanced(); err != nil {
					t.Error(err)
					return
				}
				_ = s.Counts()
			}
		}()
		wg.Add(1)
		go func() { // shard composition
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := peer.Merge(s.Snapshot()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, c := range s.Counts() {
		total += c
	}
	if want := int64(4*200*2 + 4*200*2); total != want {
		// Each Observe contributes m=2 reports; each AddReport 2 (or,
		// rarely, 1 when the two dims collide).
		if total < want-4*200 || total > want {
			t.Fatalf("total count %d implausible (want ≈%d)", total, want)
		}
	}
}

func TestSessionRunStreamingInterleave(t *testing.T) {
	// Reports arriving over Observe while a batch Run is in flight must
	// all land: Run merges shard snapshots, it does not overwrite.
	const d = 4
	s, err := New(WithMechanism(Laplace()), WithBudget(2), WithDims(d, d), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ds := NewUniformDataset(5000, d, 31)
	done := make(chan error, 1)
	go func() {
		row := make([]float64, d)
		for i := 0; i < 1000; i++ {
			ds.Row(i%5000, row)
			if err := s.Observe(Tuple{Values: row}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if _, err := s.Run(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for j, c := range s.Counts() {
		if c != 5000+1000 {
			t.Fatalf("dimension %d count %d, want %d", j, c, 6000)
		}
	}
}

func TestSessionOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"no mechanism", []Option{WithBudget(1), WithDims(4, 4)}},
		{"nil mechanism", []Option{WithMechanism(nil)}},
		{"bad budget", []Option{WithMechanism(Laplace()), WithBudget(-1), WithDims(4, 4)}},
		{"m > d", []Option{WithMechanism(Laplace()), WithBudget(1), WithDims(4, 5)}},
		{"cards and wholetuple", []Option{WithBudget(1), WithCards([]int{2, 2}), WithWholeTuple()}},
		{"allocation and cards", []Option{WithMechanism(Laplace()), WithBudget(1), WithCards([]int{2, 2}), WithAllocation(UniformAllocation(1, 2, 2))}},
		{"allocation and wholetuple", []Option{WithBudget(1), WithDims(2, 0), WithWholeTuple(), WithAllocation(UniformAllocation(1, 2, 2))}},
		{"cards vs dims", []Option{WithMechanism(Laplace()), WithBudget(1), WithCards([]int{2, 2}), WithDims(3, 1)}},
		{"empty cards", []Option{WithMechanism(Laplace()), WithBudget(1), WithCards(nil)}},
		{"nil estimator", []Option{WithEstimator(nil)}},
	}
	for _, tc := range cases {
		if _, err := New(tc.opts...); err == nil {
			t.Errorf("%s: New succeeded", tc.name)
		}
	}
	// Wrong source family.
	s, err := New(WithMechanism(Laplace()), WithBudget(1), WithCards([]int{2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), NewUniformDataset(10, 2, 1)); err == nil {
		t.Fatal("freq session must reject a numeric Dataset")
	}
	if _, err := s.Freqs(make([]float64, 3)); err == nil {
		t.Fatal("Freqs must validate the flat width")
	}
	m, err := New(WithMechanism(Laplace()), WithBudget(1), WithDims(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), NewUniformCatDataset(10, []int{2}, 1)); err == nil {
		t.Fatal("mean session must reject a CatDataset")
	}
	if _, err := m.Freqs(nil); err == nil {
		t.Fatal("Freqs on a mean session must fail")
	}
}

func TestSessionCustomEstimator(t *testing.T) {
	agg := NewAggregator(Protocol{Mech: Laplace(), Eps: 1, D: 3, M: 3})
	s, err := New(WithEstimator(agg), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	ds := NewUniformDataset(300, 3, 8)
	res, err := s.Run(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range res.Counts {
		if c != 300 {
			t.Fatalf("custom estimator count[%d] = %d, want 300 (no double counting)", j, c)
		}
	}
}
