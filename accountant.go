package hdr4me

import (
	"fmt"
	"math"
	"sync"

	"github.com/hdr4me/hdr4me/internal/est"
)

// budgetSlack absorbs float64 accumulation noise when charges sum exactly
// to the configured total (e.g. 0.8 + 0.6 + 0.6 against 2.0).
const budgetSlack = 1e-9

// Accountant tracks the cumulative per-user privacy spend of every query
// registered against one user population. Each query with budget ε costs
// every reporting user ε by sequential composition, so the sum of the
// live queries' budgets is the per-user total; the accountant rejects any
// registration that would push that sum past the configured ceiling.
//
// Deleting a query does not refund its ε: the reports were already
// collected, so the privacy cost is sunk. Only a registration that never
// went live (estimator construction failed) is rolled back.
//
// An Accountant implements the registry's admission interface; plug it in
// with NewQueryRegistry. Safe for concurrent use.
//
// # Per-epoch renewal
//
// EnableRenewal(h) switches the ledger to the continual-collection
// model: the privacy guarantee is scoped to any window of h consecutive
// epochs instead of the process lifetime. A live query with budget ε
// then costs each user ε per epoch it collects in, so its worst-case
// spend inside any h-epoch window is h·ε — that product is what the
// ledger holds against the total while the query is live. When the
// query is deleted (est.Retirer wired through the registry), the charge
// is not dropped at once: windows ending k epochs after the deletion
// still contain h−k of its epochs, so the charge decays by ε on every
// Renew until it is fully recovered after h epochs. Admission therefore
// enforces, at every instant,
//
//	sunk + h·Σ_live ε_q + Σ_retired ε_q·left_q ≤ total
//
// which bounds each user's spend within ANY h consecutive epochs by the
// total (user-level sequential composition across the horizon).
type Accountant struct {
	mu    sync.Mutex
	total float64
	spent float64 // sunk spend: one-shot charges + restored sunk cost

	// Renewal ledger (horizon == 0 means renewal is disabled and the
	// fields stay zero; spent then carries every charge).
	horizon int
	epoch   uint64       // epochs renewed so far
	rate    float64      // Σ ε of live renewed queries (charged h·rate)
	tail    []tailCharge // retired queries' decaying charges
}

// tailCharge is a retired renewed query's remaining window exposure:
// eps·left of budget still held, decaying by eps per Renew.
type tailCharge struct {
	eps  float64
	left int
}

// NewAccountant returns an accountant enforcing the given total per-user
// budget ε across all registered queries.
func NewAccountant(totalEps float64) (*Accountant, error) {
	if !(totalEps > 0) || math.IsInf(totalEps, 0) {
		return nil, fmt.Errorf("hdr4me: total budget %v must be finite and positive", totalEps)
	}
	return &Accountant{total: totalEps}, nil
}

// Admit charges spec's ε against the remaining budget, rejecting the
// charge when it would exceed the total.
func (a *Accountant) Admit(spec est.QuerySpec) error {
	if spec.Eps < 0 || math.IsNaN(spec.Eps) || math.IsInf(spec.Eps, 0) {
		return fmt.Errorf("hdr4me: query %q: cannot account for budget %v", spec.Name, spec.Eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.horizon > 0 {
		// Renewed admission: the query costs ε per epoch, h·ε within
		// any horizon window.
		charge := float64(a.horizon) * spec.Eps
		if next := a.committedLocked() + charge; next > a.total+budgetSlack {
			return fmt.Errorf("hdr4me: query %q (ε=%g/epoch, %g over the %d-epoch horizon) would push the per-user window spend to %g, over the budget of %g",
				spec.Name, spec.Eps, charge, a.horizon, next, a.total)
		}
		a.rate += spec.Eps
		return nil
	}
	if a.spent+spec.Eps > a.total+budgetSlack {
		return fmt.Errorf("hdr4me: query %q (ε=%g) would push the per-user spend to %g, over the budget of %g",
			spec.Name, spec.Eps, a.spent+spec.Eps, a.total)
	}
	a.spent += spec.Eps
	return nil
}

// Release rolls back an Admit whose query never went live. The registry
// calls it only on construction failure; deleted queries keep their
// charge.
func (a *Accountant) Release(spec est.QuerySpec) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.horizon > 0 {
		a.rate -= spec.Eps
		if a.rate < 0 {
			a.rate = 0
		}
		return
	}
	a.spent -= spec.Eps
	if a.spent < 0 {
		a.spent = 0
	}
}

// Retire implements est.Retirer: a live renewed query was deleted, so
// its recurring per-epoch charge stops growing and starts expiring —
// the remaining h·ε window exposure decays by ε on each Renew. Without
// renewal Retire is a no-op: the spend stays sunk, exactly as Delete
// documents.
func (a *Accountant) Retire(spec est.QuerySpec) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.horizon == 0 || !(spec.Eps > 0) {
		return
	}
	a.rate -= spec.Eps
	if a.rate < 0 {
		a.rate = 0
	}
	a.tail = append(a.tail, tailCharge{eps: spec.Eps, left: a.horizon})
}

// EnableRenewal switches the ledger to per-epoch renewal over a horizon
// of h epochs (see the type comment for the math). It must be called
// before any query is admitted.
func (a *Accountant) EnableRenewal(h int) error {
	if h < 1 {
		return fmt.Errorf("hdr4me: renewal horizon %d < 1 epoch", h)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent != 0 || a.rate != 0 {
		return fmt.Errorf("hdr4me: cannot enable renewal on a ledger with existing spend")
	}
	a.horizon = h
	return nil
}

// Horizon returns the renewal horizon in epochs (0: renewal disabled).
func (a *Accountant) Horizon() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.horizon
}

// Epoch returns how many epochs the ledger has renewed through.
func (a *Accountant) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// Renew advances the ledger one epoch: every retired query's remaining
// window exposure decays by its ε, and charges that have fully expired
// release their budget. Live queries keep their h·ε hold — their next
// epoch costs what their expiring oldest epoch recovers. Call it once
// per collector epoch, from the same clock that rotates the rings.
func (a *Accountant) Renew() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.epoch++
	kept := a.tail[:0]
	for _, tc := range a.tail {
		if tc.left--; tc.left > 0 {
			kept = append(kept, tc)
		}
	}
	a.tail = kept
}

// committedLocked is the ledger's current hold: sunk spend plus the
// horizon-scaled rate of live renewed queries plus the decaying tail of
// retired ones. Caller holds a.mu.
func (a *Accountant) committedLocked() float64 {
	c := a.spent + float64(a.horizon)*a.rate
	for _, tc := range a.tail {
		c += tc.eps * float64(tc.left)
	}
	return c
}

// chargeSunk re-applies privacy spend that no longer maps to a live
// query — the sunk cost of queries deleted before a checkpoint — when a
// collector restores its state. The charge is unconditional and may even
// sit above the configured total (e.g. the operator lowered the ceiling
// across a restart): the data was already collected, so the ledger must
// keep the spend either way.
func (a *Accountant) chargeSunk(eps float64) {
	if !(eps > 0) {
		return
	}
	a.mu.Lock()
	a.spent += eps
	a.mu.Unlock()
}

// Total returns the configured per-user budget ceiling.
func (a *Accountant) Total() float64 { return a.total }

// Spent returns the per-user ε the ledger currently holds: the full
// cumulative spend without renewal, the sunk + window-scoped hold with.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.committedLocked()
}

// Remaining returns the per-user budget still available.
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total - a.committedLocked()
}

// renewalState snapshots the renewal ledger for checkpointing: the
// epoch counter and the retired tail. The live rate is NOT included —
// it is reconstructed by re-admitting the checkpointed queries.
func (a *Accountant) renewalState() (epoch uint64, tail []tailCharge) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch, append([]tailCharge(nil), a.tail...)
}

// restoreRenewal reinstates a checkpointed renewal ledger.
func (a *Accountant) restoreRenewal(epoch uint64, tail []tailCharge) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.epoch = epoch
	a.tail = append([]tailCharge(nil), tail...)
}

var (
	_ est.Admission = (*Accountant)(nil)
	_ est.Retirer   = (*Accountant)(nil)
)
