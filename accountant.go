package hdr4me

import (
	"fmt"
	"math"
	"sync"

	"github.com/hdr4me/hdr4me/internal/est"
)

// budgetSlack absorbs float64 accumulation noise when charges sum exactly
// to the configured total (e.g. 0.8 + 0.6 + 0.6 against 2.0).
const budgetSlack = 1e-9

// Accountant tracks the cumulative per-user privacy spend of every query
// registered against one user population. Each query with budget ε costs
// every reporting user ε by sequential composition, so the sum of the
// live queries' budgets is the per-user total; the accountant rejects any
// registration that would push that sum past the configured ceiling.
//
// Deleting a query does not refund its ε: the reports were already
// collected, so the privacy cost is sunk. Only a registration that never
// went live (estimator construction failed) is rolled back.
//
// An Accountant implements the registry's admission interface; plug it in
// with NewQueryRegistry. Safe for concurrent use.
type Accountant struct {
	mu    sync.Mutex
	total float64
	spent float64
}

// NewAccountant returns an accountant enforcing the given total per-user
// budget ε across all registered queries.
func NewAccountant(totalEps float64) (*Accountant, error) {
	if !(totalEps > 0) || math.IsInf(totalEps, 0) {
		return nil, fmt.Errorf("hdr4me: total budget %v must be finite and positive", totalEps)
	}
	return &Accountant{total: totalEps}, nil
}

// Admit charges spec's ε against the remaining budget, rejecting the
// charge when it would exceed the total.
func (a *Accountant) Admit(spec est.QuerySpec) error {
	if spec.Eps < 0 || math.IsNaN(spec.Eps) || math.IsInf(spec.Eps, 0) {
		return fmt.Errorf("hdr4me: query %q: cannot account for budget %v", spec.Name, spec.Eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent+spec.Eps > a.total+budgetSlack {
		return fmt.Errorf("hdr4me: query %q (ε=%g) would push the per-user spend to %g, over the budget of %g",
			spec.Name, spec.Eps, a.spent+spec.Eps, a.total)
	}
	a.spent += spec.Eps
	return nil
}

// Release rolls back an Admit whose query never went live. The registry
// calls it only on construction failure; deleted queries keep their
// charge.
func (a *Accountant) Release(spec est.QuerySpec) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent -= spec.Eps
	if a.spent < 0 {
		a.spent = 0
	}
}

// chargeSunk re-applies privacy spend that no longer maps to a live
// query — the sunk cost of queries deleted before a checkpoint — when a
// collector restores its state. The charge is unconditional and may even
// sit above the configured total (e.g. the operator lowered the ceiling
// across a restart): the data was already collected, so the ledger must
// keep the spend either way.
func (a *Accountant) chargeSunk(eps float64) {
	if !(eps > 0) {
		return
	}
	a.mu.Lock()
	a.spent += eps
	a.mu.Unlock()
}

// Total returns the configured per-user budget ceiling.
func (a *Accountant) Total() float64 { return a.total }

// Spent returns the cumulative per-user ε charged so far.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the per-user budget still available.
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total - a.spent
}

var _ est.Admission = (*Accountant)(nil)
