// Command ldpcollect demonstrates the full networked collection pipeline: a
// TCP collector server, a fleet of concurrent clients perturbing a synthetic
// dataset, and the collector-side naive + HDR4ME-enhanced estimates.
//
//	ldpcollect -users 20000 -d 100 -m 100 -eps 0.8 -mech piecewise
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"github.com/hdr4me/hdr4me/internal/analysis"
	"github.com/hdr4me/hdr4me/internal/dataset"
	"github.com/hdr4me/hdr4me/internal/highdim"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/mathx"
	"github.com/hdr4me/hdr4me/internal/metrics"
	"github.com/hdr4me/hdr4me/internal/recal"
	"github.com/hdr4me/hdr4me/internal/transport"
)

func main() {
	users := flag.Int("users", 20_000, "number of simulated users")
	d := flag.Int("d", 100, "dimensions")
	m := flag.Int("m", 0, "reported dimensions per user (default: d)")
	eps := flag.Float64("eps", 0.8, "collective privacy budget")
	mechName := flag.String("mech", "piecewise", "mechanism: laplace|piecewise|squarewave|duchi|hybrid|staircase")
	conns := flag.Int("conns", 8, "concurrent client connections")
	addr := flag.String("addr", "127.0.0.1:0", "collector listen address")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if *m <= 0 || *m > *d {
		*m = *d
	}
	mech, err := ldp.ByName(*mechName)
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}
	p, err := highdim.NewProtocol(mech, *eps, *d, *m)
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}

	srv := transport.NewServer(highdim.NewAggregator(p))
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("ldpcollect: listen: %v", err)
	}
	defer srv.Close()
	fmt.Printf("collector listening on %s (%s, ε=%g, d=%d, m=%d)\n", bound, mech.Name(), *eps, *d, *m)

	ds := dataset.Memoize(dataset.NewGaussian(*users, *d, *seed))
	var wg sync.WaitGroup
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := transport.Dial(bound.String())
			if err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			defer cl.Close()
			client := highdim.NewClient(p, mathx.NewRNG(*seed^0xc11e).Child(uint64(c)))
			row := make([]float64, *d)
			for i := c; i < *users; i += *conns {
				ds.Row(i, row)
				if err := cl.Send(client.Report(row)); err != nil {
					log.Printf("client %d: send: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	cl, err := transport.Dial(bound.String())
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}
	defer cl.Close()
	est, err := cl.Estimate()
	if err != nil {
		log.Fatalf("ldpcollect: estimate: %v", err)
	}
	counts, err := cl.Counts()
	if err != nil {
		log.Fatalf("ldpcollect: counts: %v", err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	fmt.Printf("collected %d (dimension, value) pairs from %d users\n", total, *users)

	truth := ds.TrueMean()
	fmt.Printf("naive aggregation MSE:    %.6g\n", metrics.MSE(est, truth))

	// Collector-side HDR4ME using the framework with an uninformative
	// 21-atom uniform prior (no access to the raw data).
	vals := make([]float64, 21)
	for i := range vals {
		vals[i] = -1 + 2*float64(i)/20
	}
	spec := analysis.UniformSpec(vals...)
	fw := analysis.Framework{Mech: mech, EpsPerDim: p.EpsPerDim(), R: p.ExpectedReports(*users)}
	var dev analysis.Deviation
	if mech.Bounded() {
		dev = fw.Deviation(&spec)
	} else {
		dev = fw.Deviation(nil)
	}
	for _, reg := range []recal.Reg{recal.RegL1, recal.RegL2} {
		enhanced := recal.Enhance(est, []analysis.Deviation{dev}, recal.DefaultConfig(reg))
		fmt.Printf("HDR4ME %s-enhanced MSE:   %.6g\n", reg, metrics.MSE(enhanced, truth))
	}
}
