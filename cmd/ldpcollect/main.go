// Command ldpcollect demonstrates the full networked collection pipeline: a
// TCP collector server, a fleet of concurrent clients perturbing synthetic
// data locally, and the collector-side naive + HDR4ME-enhanced estimates —
// the enhanced one served over the wire as its own frame type. Ctrl-C
// cancels the collection cleanly.
//
//	ldpcollect -users 20000 -d 100 -m 100 -eps 0.8 -mech piecewise
//
// Reports ride the BATCH wire frame (-batch controls the size; 1 falls
// back to per-report frames). With -merge-into the collector additionally
// acts as a shard leaf: after its round it ships one snapshot to the
// parent collector at that address over the MERGE frame, so several
// ldpcollect processes fold into a tree.
//
//	ldpcollect -addr 127.0.0.1:9000 -users 0            # parent: serve only
//	ldpcollect -merge-into 127.0.0.1:9000 -users 20000  # leaf shard
//
// Multi-query mode: each repeatable -query flag opens one named query on
// a shared registry — means, whole-tuple distributions and frequencies
// side by side on one port, wire-routed by name, with the per-user
// privacy spend accounted across all of them (-total-eps).
//
//	ldpcollect -total-eps 2.0 \
//	  -query temps,kind=mean,mech=piecewise,eps=0.8,d=16 \
//	  -query vitals,kind=wholetuple,eps=0.6,d=4 \
//	  -query pets,kind=freq,mech=squarewave,eps=0.5,cards=3x4x5,m=2
//
// With -pprof addr a net/http/pprof listener comes up on a side port, so
// ingest contention (stripe mutexes) and decode allocations are
// observable in deployments:
//
//	ldpcollect -users 0 -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/mutex
//
// Durability: with -state-dir the collector checkpoints its full state —
// every query's spec, lifecycle and folded snapshot, plus the privacy
// accountant's ledger — to dir/checkpoint.ckpt, atomically, every
// -checkpoint-interval, on demand via the CHECKPOINT (0x0B) wire frame,
// and on shutdown after a graceful drain (stop accepting, let in-flight
// connections finish, checkpoint, exit). On startup the checkpoint is
// restored through the ordinary registration path, so a kill -9 loses
// only the reports accepted after the last checkpoint:
//
//	ldpcollect -users 0 -state-dir /var/lib/ldpcollect -total-eps 2.0 \
//	  -query temps,kind=mean,mech=piecewise,eps=0.8,d=16
//
// A checkpoint file that fails its CRC is refused with a clear error and
// the collector starts fresh — never a silent partial restore.
//
// Continual collection: any of -epoch, -window, -horizon or -lateness
// switches the collector to epoch mode — the live estimate rotates into a
// ring of frozen per-epoch snapshots (every -epoch interval, on ROTATE
// wire frames, and once on shutdown drain), sliding-window and decayed
// estimates are served over the WINDOW/DECAY frames, and with -horizon
// the per-user budget (-total-eps) renews as epochs expire:
//
//	ldpcollect -users 0 -state-dir /var/lib/ldpcollect -total-eps 2.0 \
//	  -epoch 1m -window 8 -horizon 4 \
//	  -query temps,kind=mean,mech=piecewise,eps=0.4,d=16
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof side listener
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	hdr4me "github.com/hdr4me/hdr4me"
)

// drainTimeout bounds the graceful-shutdown drain: connections that have
// not finished their exchanges and disconnected by then are force-closed
// (the final checkpoint still captures everything acknowledged).
const drainTimeout = 5 * time.Second

// querySpecs collects repeatable -query flags.
type querySpecs []hdr4me.QuerySpec

func (q *querySpecs) String() string {
	names := make([]string, len(*q))
	for i, s := range *q {
		names[i] = s.Name
	}
	return strings.Join(names, ",")
}

func (q *querySpecs) Set(s string) error {
	spec, err := hdr4me.ParseQuerySpec(s)
	if err != nil {
		return err
	}
	*q = append(*q, spec)
	return nil
}

func main() {
	users := flag.Int("users", 20_000, "number of simulated users (0 = serve only)")
	d := flag.Int("d", 100, "dimensions")
	m := flag.Int("m", 0, "reported dimensions per user (default: d)")
	eps := flag.Float64("eps", 0.8, "collective privacy budget")
	mechName := flag.String("mech", "piecewise",
		"mechanism: "+strings.Join(hdr4me.MechanismNames(), "|"))
	conns := flag.Int("conns", 8, "concurrent client connections")
	batch := flag.Int("batch", 256, "reports per BATCH frame (1 = unbatched per-report sends)")
	proto := flag.Int("proto", 0,
		"wire protocol the simulated clients pin: 1 = legacy row batches, 2 = columnar CBATCH, 0 = negotiate")
	addr := flag.String("addr", "127.0.0.1:0", "collector listen address")
	mergeInto := flag.String("merge-into", "", "parent collector address to fold this shard's snapshot into")
	seed := flag.Uint64("seed", 1, "random seed")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this side listener (e.g. localhost:6060; empty = off) "+
			"to observe ingest contention and allocation in a live collector")
	idleTimeout := flag.Duration("idle-timeout", 0,
		"force-close a connection idle (or stalled mid-frame) this long between reads (0 = no limit)")
	writeTimeout := flag.Duration("write-timeout", 0,
		"force-close a connection that does not drain a reply within this bound (0 = no limit)")
	maxConns := flag.Int("max-conns", 0,
		"cap concurrently served connections; excess connections are NACKed retryable and closed (0 = no cap)")
	maxInflight := flag.Int("max-inflight", 0,
		"cap reports concurrently being decoded and accumulated; over-limit batches are NACKed retryable (0 = no cap)")
	totalEps := flag.Float64("total-eps", 0, "total per-user privacy budget across all queries (0 = unaccounted)")
	stateDir := flag.String("state-dir", "",
		"directory for durable collector state: restore on startup, checkpoint periodically, "+
			"on CHECKPOINT wire frames, and on shutdown (empty = in-memory only)")
	ckptEvery := flag.Duration("checkpoint-interval", time.Minute,
		"how often to checkpoint collector state to -state-dir (0 = only on demand and on shutdown)")
	epochDur := flag.Duration("epoch", 0,
		"rotate continual-collection epochs this often (0 = rotate only on ROTATE wire frames and shutdown)")
	window := flag.Int("window", 0,
		"retain at least this many frozen epochs for sliding-window estimates (enables continual collection)")
	horizon := flag.Int("horizon", 0,
		"renew the per-user budget over windows of this many epochs (multi-query mode with -total-eps only)")
	latenessName := flag.String("lateness", "",
		"late-report policy for continual collection: bucket|reject|current (default bucket)")
	var queries querySpecs
	flag.Var(&queries, "query",
		"open a named query (repeatable): name,kind=mean|wholetuple|freq,mech=...,eps=...,d=...[,m=...][,cards=AxBxC]")
	flag.Parse()

	// Flag validation: reject combinations that cannot work instead of
	// silently misbehaving.
	if *batch < 1 {
		log.Fatalf("ldpcollect: -batch must be >= 1, have %d", *batch)
	}
	if *users < 0 {
		log.Fatalf("ldpcollect: -users must be >= 0, have %d", *users)
	}
	if *conns < 1 {
		log.Fatalf("ldpcollect: -conns must be >= 1, have %d", *conns)
	}
	if *proto < 0 || *proto > hdr4me.ProtocolV2 {
		log.Fatalf("ldpcollect: -proto must be 0 (negotiate), 1 or 2, have %d", *proto)
	}
	if *mergeInto != "" && *users == 0 {
		log.Fatalf("ldpcollect: -merge-into with -users 0 is invalid: a serve-only collector has no " +
			"collection round after which to fold; run the parent without -merge-into and give this " +
			"process users, or push the snapshot from a leaf that collects")
	}
	if *mergeInto != "" && len(queries) > 0 {
		log.Fatalf("ldpcollect: -merge-into supports single-query mode only (the MERGE frame would " +
			"need one -query name to route to; push per-query snapshots with the client API instead)")
	}
	if *ckptEvery < 0 {
		log.Fatalf("ldpcollect: -checkpoint-interval must be >= 0, have %v", *ckptEvery)
	}
	if *idleTimeout < 0 || *writeTimeout < 0 {
		log.Fatalf("ldpcollect: -idle-timeout and -write-timeout must be >= 0, have %v and %v",
			*idleTimeout, *writeTimeout)
	}
	if *maxConns < 0 || *maxInflight < 0 {
		log.Fatalf("ldpcollect: -max-conns and -max-inflight must be >= 0, have %d and %d",
			*maxConns, *maxInflight)
	}
	hard := hardeningFlags{
		idle:        *idleTimeout,
		write:       *writeTimeout,
		maxConns:    *maxConns,
		maxInflight: *maxInflight,
	}
	if *epochDur < 0 || *window < 0 || *horizon < 0 {
		log.Fatalf("ldpcollect: -epoch, -window and -horizon must be >= 0")
	}
	ec := continualFlags{dur: *epochDur, window: *window, horizon: *horizon, lateness: hdr4me.LateBucket}
	if *latenessName != "" {
		var err error
		if ec.lateness, err = hdr4me.ParseLatenessPolicy(*latenessName); err != nil {
			log.Fatalf("ldpcollect: %v", err)
		}
	}
	ec.enabled = *epochDur > 0 || *window > 0 || *horizon > 0 || *latenessName != ""
	if ec.enabled {
		if *horizon > 0 && len(queries) == 0 {
			log.Fatalf("ldpcollect: -horizon renews a shared budget: it needs multi-query mode (-query) with -total-eps")
		}
		if *mergeInto != "" {
			log.Fatalf("ldpcollect: -merge-into with continual collection is invalid: a shard snapshot " +
				"covers only the live epoch, so the fold would silently drop the frozen ring")
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Observability side listener: pprof profiles (mutex contention on the
	// ingest stripes, allocation in the decode path) and the collector's
	// failure counters under /debug/collector, without exposing the debug
	// surface on the collector port. Mutex profiling is off by default in
	// the runtime; sample 1-in-10 contention events so /debug/pprof/mutex
	// actually shows the stripe locks. Listen synchronously (port 0 works,
	// and the bound address is printed before any traffic) and serve in
	// the background.
	if *pprofAddr != "" {
		runtime.SetMutexProfileFraction(10)
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("ldpcollect: pprof listen: %v", err)
		}
		fmt.Printf("pprof listening on http://%s/debug/pprof/ (failure counters on /debug/collector)\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				log.Printf("ldpcollect: pprof: %v", err)
			}
		}()
	}

	if len(queries) > 0 {
		multiQuery(ctx, queries, *addr, *users, *batch, *proto, *totalEps, *stateDir, *ckptEvery, *seed, ec, hard)
		return
	}

	if *m <= 0 || *m > *d {
		*m = *d
	}
	mech, err := hdr4me.MechanismByName(*mechName)
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}

	// Collector side: one Session holds the estimator and its HDR4ME
	// configuration; the TCP server serves it — reports in, naive and
	// enhanced estimates out.
	opts := []hdr4me.Option{
		hdr4me.WithMechanism(mech),
		hdr4me.WithBudget(*eps),
		hdr4me.WithDims(*d, *m),
		hdr4me.WithEnhance(hdr4me.DefaultEnhanceConfig(hdr4me.RegL1)),
		hdr4me.WithSeed(*seed),
	}
	if *stateDir != "" {
		opts = append(opts, hdr4me.WithStateDir(*stateDir))
		if *ckptEvery > 0 {
			opts = append(opts, hdr4me.WithCheckpointInterval(*ckptEvery))
		}
	}
	if ec.enabled {
		// The session runs its own wall-clock rotation ticker; explicit
		// ROTATE wire frames work with or without one.
		if ec.dur > 0 {
			opts = append(opts, hdr4me.WithEpochDuration(ec.dur))
		}
		if ec.window > 0 {
			opts = append(opts, hdr4me.WithWindow(ec.window))
		}
		opts = append(opts, hdr4me.WithLateness(ec.lateness))
	}
	sess, err := hdr4me.New(opts...)
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}
	var save func() error
	if *stateDir != "" {
		defer sess.Close()
		save = sess.SaveCheckpoint
		// Restore before the server comes up, so the merged fold
		// reproduces the saved estimate bitwise under quiesced traffic.
		// A checkpoint that fails its CRC is refused loudly and the
		// collector starts fresh — never a silent partial restore. Any
		// other refusal (e.g. the flags no longer match the saved spec)
		// is fatal: continuing would soon overwrite a still-valid
		// checkpoint with a fresh, near-empty one.
		switch restored, rerr := sess.RestoreCheckpoint(); {
		case errors.Is(rerr, hdr4me.ErrCorruptCheckpoint):
			log.Printf("ldpcollect: refusing checkpoint: %v (starting fresh)", rerr)
		case rerr != nil:
			log.Fatalf("ldpcollect: restore collector state: %v", rerr)
		case restored:
			fmt.Printf("restored collector state from %s\n", *stateDir)
		}
	}
	// ServingEstimator is the epoch ring for a continual session (so the
	// EPOCH/WINDOW/DECAY/ROTATE frames route), the bare estimator otherwise.
	srv := hdr4me.NewEstimatorServer(sess.ServingEstimator())
	srv.OnCheckpoint = save // nil without -state-dir: CHECKPOINT frames NACK
	hard.apply(srv)
	exposeStats(srv)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("ldpcollect: listen: %v", err)
	}
	defer srv.Close()
	fmt.Printf("collector listening on %s (%s, ε=%g, d=%d, m=%d)\n", bound, mech.Name(), *eps, *d, *m)
	hard.banner()
	if ec.enabled {
		fmt.Printf("continual collection: epoch interval %v, window %d, lateness %v\n", ec.dur, ec.window, ec.lateness)
	}
	var rotate func()
	if ec.enabled {
		rotate = func() {
			if _, err := sess.Rotate(); err != nil {
				log.Printf("ldpcollect: final rotation: %v", err)
			} else {
				fmt.Println("final epoch rotated")
			}
		}
	}

	// Parent mode: no local users, just serve queries and fold in shard
	// snapshots arriving over MERGE frames until interrupted.
	if *users == 0 {
		fmt.Println("serve-only: accepting reports, queries and shard merges (Ctrl-C to stop)")
		<-ctx.Done()
		drainAndCheckpoint(srv, rotate, save)
		var total int64
		for _, c := range sess.Counts() {
			total += c
		}
		fmt.Printf("final state: %d (dimension, value) pairs accumulated\n", total)
		return
	}

	// User side: perturb locally, ship reports over real sockets.
	p, err := hdr4me.NewProtocol(mech, *eps, *d, *m)
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}
	ds := hdr4me.Memoize(hdr4me.NewGaussianDataset(*users, *d, *seed))
	var wg sync.WaitGroup
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// -batch 1 is the true per-report baseline: a plain client
			// whose Send blocks on each ack. Anything larger rides the
			// auto-batching BATCH-frame path.
			var send func(hdr4me.Report) error
			if *batch == 1 {
				cl, err := hdr4me.DialCollector(bound.String())
				if err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
				defer cl.Close()
				send = cl.Send
			} else {
				bopts := []hdr4me.BufferOption{hdr4me.WithBatchSize(*batch)}
				if *proto != 0 {
					bopts = append(bopts, hdr4me.WithProtocolVersion(*proto))
				}
				bc, err := hdr4me.DialCollectorBuffered(bound.String(), bopts...)
				if err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
				defer func() {
					if err := bc.Close(); err != nil {
						log.Printf("client %d: flush: %v", c, err)
					}
				}()
				send = bc.Add
			}
			client := hdr4me.NewClient(p, hdr4me.NewRNG(*seed^0xc11e).Child(uint64(c)))
			row := make([]float64, *d)
			for i := c; i < *users; i += *conns {
				if ctx.Err() != nil {
					return
				}
				ds.Row(i, row)
				if err := send(client.Report(row)); err != nil {
					log.Printf("client %d: send: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if ctx.Err() != nil {
		fmt.Println("ldpcollect: cancelled")
		return
	}

	cl, err := hdr4me.DialCollector(bound.String())
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}
	defer cl.Close()
	est, err := cl.Estimate()
	if err != nil {
		log.Fatalf("ldpcollect: estimate: %v", err)
	}
	counts, err := cl.Counts()
	if err != nil {
		log.Fatalf("ldpcollect: counts: %v", err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	fmt.Printf("collected %d (dimension, value) pairs from %d users\n", total, *users)

	truth := ds.TrueMean()
	fmt.Printf("naive aggregation MSE:    %.6g\n", hdr4me.MSE(est, truth))

	// The enhanced estimate arrives over the wire too (0x04 frame): the
	// collector derives deviations from the framework with an
	// uninformative prior — no access to the raw data.
	enhanced, err := cl.Enhanced()
	if err != nil {
		log.Fatalf("ldpcollect: enhanced: %v", err)
	}
	fmt.Printf("HDR4ME L1-enhanced MSE:   %.6g (served as wire frame 0x04)\n", hdr4me.MSE(enhanced, truth))

	// Leaf-shard mode: fold everything this collector accumulated into the
	// parent, one snapshot over the wire — no report replay.
	if *mergeInto != "" {
		if err := sess.PushSnapshotContext(ctx, *mergeInto); err != nil {
			log.Fatalf("ldpcollect: merge into %s: %v", *mergeInto, err)
		}
		fmt.Printf("shard snapshot folded into parent collector at %s (wire frame 0x08)\n", *mergeInto)
	}
	if save != nil {
		if err := save(); err != nil {
			log.Printf("ldpcollect: final checkpoint: %v", err)
		} else {
			fmt.Printf("collector state checkpointed to %s\n", *stateDir)
		}
	}
}

// continualFlags bundles the continual-collection flags; enabled is true
// when any of them was set.
type continualFlags struct {
	enabled  bool
	dur      time.Duration
	window   int
	horizon  int
	lateness hdr4me.LatenessPolicy
}

// hardeningFlags bundles the failure-hardening knobs. apply must run
// before srv.Listen: the accept loop reads these fields without locks.
type hardeningFlags struct {
	idle, write           time.Duration
	maxConns, maxInflight int
}

func (h hardeningFlags) apply(srv *hdr4me.CollectorServer) {
	srv.IdleTimeout = h.idle
	srv.WriteTimeout = h.write
	srv.MaxConns = h.maxConns
	srv.MaxInflight = h.maxInflight
}

func (h hardeningFlags) banner() {
	if h.idle == 0 && h.write == 0 && h.maxConns == 0 && h.maxInflight == 0 {
		return
	}
	fmt.Printf("hardening: idle-timeout %v, write-timeout %v, max-conns %d, max-inflight %d\n",
		h.idle, h.write, h.maxConns, h.maxInflight)
}

// exposeStats registers the collector's failure-and-recovery counters as
// a JSON endpoint on the default mux, next to the pprof handlers — the
// shed/deadline/dedupe counts a harness (or an operator) polls to see
// whether the collector is degrading gracefully. Without -pprof nothing
// serves the mux and the registration is inert.
func exposeStats(srv *hdr4me.CollectorServer) {
	http.HandleFunc("/debug/collector", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(srv.Stats()); err != nil {
			log.Printf("ldpcollect: /debug/collector: %v", err)
		}
	})
}

// drainAndCheckpoint is the graceful-shutdown tail: stop accepting, let
// in-flight connections finish their exchanges (bounded by
// drainTimeout; stragglers are force-closed), rotate the final epoch
// (continual collectors only — after the drain, so every acknowledged
// report lands in a frozen epoch), then write one final checkpoint so
// everything acknowledged before the drain survives the restart. rotate
// is nil for one-shot collectors; save is nil without -state-dir.
func drainAndCheckpoint(srv *hdr4me.CollectorServer, rotate func(), save func() error) {
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("ldpcollect: drain: %v (remaining connections force-closed)", err)
	}
	if rotate != nil {
		rotate()
	}
	if save == nil {
		return
	}
	if err := save(); err != nil {
		log.Printf("ldpcollect: final checkpoint: %v", err)
	} else {
		fmt.Println("final checkpoint saved")
	}
}

// multiQuery hosts every -query spec on one registry behind one port and,
// when users > 0, runs one routed collection round per query. With a
// state directory it first restores the previous checkpoint — every
// saved query replays through the ordinary Open path, so restored
// state passes the same Accountant gating as live registrations — and
// keeps the state durable (interval, CHECKPOINT frames, shutdown drain).
func multiQuery(ctx context.Context, queries querySpecs, addr string, users, batch, proto int, totalEps float64, stateDir string, ckptEvery time.Duration, seed uint64, ec continualFlags, hard hardeningFlags) {
	var acct *hdr4me.Accountant
	if totalEps > 0 {
		var err error
		if acct, err = hdr4me.NewAccountant(totalEps); err != nil {
			log.Fatalf("ldpcollect: %v", err)
		}
	}
	var reg *hdr4me.Registry
	if ec.enabled {
		if ec.horizon > 0 && acct == nil {
			log.Fatalf("ldpcollect: -horizon needs -total-eps: renewal is an accounting of the shared budget")
		}
		var err error
		// -window maps to retention: a w-epoch WINDOW frame needs the last
		// w epochs still in the ring.
		reg, err = hdr4me.NewEpochQueryRegistry(acct, hdr4me.EpochConfig{
			Retain:   ec.window,
			Lateness: ec.lateness,
			Horizon:  ec.horizon,
		})
		if err != nil {
			log.Fatalf("ldpcollect: %v", err)
		}
		fmt.Printf("continual collection: epoch interval %v, window %d, horizon %d, lateness %v\n",
			ec.dur, ec.window, ec.horizon, ec.lateness)
	} else {
		reg = hdr4me.NewQueryRegistry(acct)
	}
	if stateDir != "" {
		switch n, err := hdr4me.RestoreCollectorState(stateDir, reg, acct); {
		case errors.Is(err, hdr4me.ErrCorruptCheckpoint):
			// Refused outright: corrupt state must not half-restore.
			log.Printf("ldpcollect: refusing checkpoint: %v (starting fresh)", err)
		case err != nil:
			log.Fatalf("ldpcollect: restore collector state: %v", err)
		case n > 0:
			fmt.Printf("restored %d queries from %s\n", n, stateDir)
		}
	}
	for _, spec := range queries {
		if restored := reg.Get(spec.Name); restored != nil {
			// The restored query wins over the flag — but only when they
			// agree. A silent mismatch would have this process's client
			// rounds perturb under the flag's parameters while the
			// restored estimator debiases under the saved ones.
			if err := hdr4me.CompatibleSpecs(spec, restored.Spec()); err != nil {
				log.Fatalf("ldpcollect: -query %s conflicts with the query restored from the checkpoint: %v "+
					"(match the flags to the saved state, or delete the checkpoint)", spec.Name, err)
			}
			fmt.Printf("query %q already restored from checkpoint; -query flag matches\n", spec.Name)
			continue
		}
		if _, err := reg.Open(spec); err != nil {
			log.Fatalf("ldpcollect: open query: %v", err)
		}
		fmt.Printf("query %q open (kind=%s, ε=%g)\n", spec.Name, spec.Kind, spec.Eps)
	}
	srv := hdr4me.NewRegistryServer(reg)
	var save func() error
	// stopCkpt joins the periodic checkpointer: the final post-drain save
	// must never race an in-flight periodic rename, or the checkpoint
	// could end up holding stale pre-drain state.
	stopCkpt := func() {}
	if stateDir != "" {
		// saveMu serializes overlapping saves (periodic ticker, CHECKPOINT
		// frames, final) so the file always holds the newest capture.
		var saveMu sync.Mutex
		save = func() error {
			saveMu.Lock()
			defer saveMu.Unlock()
			return hdr4me.SaveCollectorState(stateDir, reg, acct)
		}
		srv.OnCheckpoint = save
		if ckptEvery > 0 {
			// Safe to start now: the restore already ran above.
			stopCkpt = hdr4me.StartCheckpointer(ckptEvery, save, func(err error) {
				log.Printf("ldpcollect: periodic checkpoint: %v", err)
			})
			defer stopCkpt()
		}
	}
	// The collector-level epoch ticker rotates every query and renews the
	// budget ledger in one step, so epoch ids stay aligned across queries.
	stopRotate := func() {}
	if ec.enabled && ec.dur > 0 {
		stopRotate = hdr4me.StartCheckpointer(ec.dur, func() error {
			hdr4me.RotateCollector(reg, acct)
			return nil
		}, nil)
		defer stopRotate()
	}
	var rotate func()
	if ec.enabled {
		rotate = func() {
			hdr4me.RotateCollector(reg, acct)
			fmt.Println("final epoch rotated")
		}
	}
	hard.apply(srv)
	exposeStats(srv)
	bound, err := srv.Listen(addr)
	if err != nil {
		log.Fatalf("ldpcollect: listen: %v", err)
	}
	defer srv.Close()
	fmt.Printf("multi-query collector listening on %s (%d queries", bound, reg.Len())
	if acct != nil {
		fmt.Printf(", per-user spend %g of %g", acct.Spent(), acct.Total())
	}
	fmt.Println(")")
	hard.banner()

	if users == 0 {
		fmt.Println("serve-only: accepting routed reports, OPENQUERY registrations and estimates (Ctrl-C to stop)")
		<-ctx.Done()
		stopCkpt()
		stopRotate()
		drainAndCheckpoint(srv, rotate, save)
		return
	}

	var wg sync.WaitGroup
	for _, spec := range queries {
		wg.Add(1)
		go func(spec hdr4me.QuerySpec) {
			defer wg.Done()
			if err := runQueryRound(ctx, bound.String(), spec, users, batch, proto, seed); err != nil {
				log.Printf("query %q: %v", spec.Name, err)
			}
		}(spec)
	}
	wg.Wait()
	stopRotate()
	if rotate != nil {
		rotate()
	}
	if save != nil {
		stopCkpt()
		if err := save(); err != nil {
			log.Printf("ldpcollect: final checkpoint: %v", err)
		} else {
			fmt.Printf("collector state checkpointed to %s\n", stateDir)
		}
	}
}

// runQueryRound simulates one query's user population: a spec-built
// session perturbs on the "device", routed BATCH frames carry the reports,
// and the query's served estimate is compared against the exact answer.
func runQueryRound(ctx context.Context, addr string, spec hdr4me.QuerySpec, users, batch, proto int, seed uint64) error {
	// Derive an independent perturbation stream per query: hashing the
	// name keeps same-length names from colliding into identical noise.
	h := fnv.New64a()
	h.Write([]byte(spec.Name))
	perturber, err := hdr4me.NewFromSpec(spec, hdr4me.WithSeed(seed^h.Sum64()))
	if err != nil {
		return err
	}
	var copts []hdr4me.CollectorClientOption
	if proto != 0 {
		copts = append(copts, hdr4me.WithClientProtocolVersion(proto))
	}
	cl, err := hdr4me.DialCollectorContext(ctx, addr, copts...)
	if err != nil {
		return err
	}
	defer cl.Close()
	q := cl.Query(spec.Name)

	reps := make([]hdr4me.Report, 0, batch)
	flush := func() error {
		if len(reps) == 0 {
			return nil
		}
		if _, err := q.SendBatch(reps); err != nil {
			return err
		}
		reps = reps[:0]
		return nil
	}

	var truth []float64
	if spec.Kind == hdr4me.KindFreq {
		cds := hdr4me.NewZipfCatDataset(users, spec.Cards, 1.1, seed)
		for _, row := range hdr4me.TrueFreqs(cds) {
			truth = append(truth, row...)
		}
		cats := make([]int, len(spec.Cards))
		for i := 0; i < users && ctx.Err() == nil; i++ {
			for j := range cats {
				cats[j] = cds.Value(i, j)
			}
			rep, err := perturber.Report(hdr4me.Tuple{Cats: cats})
			if err != nil {
				return err
			}
			if reps = append(reps, rep); len(reps) >= batch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	} else {
		ds := hdr4me.Memoize(hdr4me.NewGaussianDataset(users, spec.D, seed))
		truth = ds.TrueMean()
		row := make([]float64, spec.D)
		for i := 0; i < users && ctx.Err() == nil; i++ {
			ds.Row(i, row)
			rep, err := perturber.Report(hdr4me.Tuple{Values: row})
			if err != nil {
				return err
			}
			if reps = append(reps, rep); len(reps) >= batch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	estimate, err := q.Estimate()
	if err != nil {
		return err
	}
	fmt.Printf("query %q: %d users collected, naive MSE %.6g (SELECT-routed over one shared port)\n",
		spec.Name, users, hdr4me.MSE(estimate, truth))
	return nil
}
