// Command ldpcollect demonstrates the full networked collection pipeline: a
// TCP collector server wrapping a Session estimator, a fleet of concurrent
// clients perturbing a synthetic dataset, and the collector-side naive +
// HDR4ME-enhanced estimates — the enhanced one served over the wire as its
// own frame type. Ctrl-C cancels the collection cleanly.
//
//	ldpcollect -users 20000 -d 100 -m 100 -eps 0.8 -mech piecewise
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	hdr4me "github.com/hdr4me/hdr4me"
)

func main() {
	users := flag.Int("users", 20_000, "number of simulated users")
	d := flag.Int("d", 100, "dimensions")
	m := flag.Int("m", 0, "reported dimensions per user (default: d)")
	eps := flag.Float64("eps", 0.8, "collective privacy budget")
	mechName := flag.String("mech", "piecewise",
		"mechanism: "+strings.Join(hdr4me.MechanismNames(), "|"))
	conns := flag.Int("conns", 8, "concurrent client connections")
	addr := flag.String("addr", "127.0.0.1:0", "collector listen address")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *m <= 0 || *m > *d {
		*m = *d
	}
	mech, err := hdr4me.MechanismByName(*mechName)
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}

	// Collector side: one Session holds the estimator and its HDR4ME
	// configuration; the TCP server serves it — reports in, naive and
	// enhanced estimates out.
	sess, err := hdr4me.New(
		hdr4me.WithMechanism(mech),
		hdr4me.WithBudget(*eps),
		hdr4me.WithDims(*d, *m),
		hdr4me.WithEnhance(hdr4me.DefaultEnhanceConfig(hdr4me.RegL1)),
		hdr4me.WithSeed(*seed),
	)
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}
	srv := hdr4me.NewEstimatorServer(sess.Estimator())
	bound, err := srv.ListenContext(ctx, *addr)
	if err != nil {
		log.Fatalf("ldpcollect: listen: %v", err)
	}
	defer srv.Close()
	fmt.Printf("collector listening on %s (%s, ε=%g, d=%d, m=%d)\n", bound, mech.Name(), *eps, *d, *m)

	// User side: perturb locally, ship reports over real sockets.
	p, err := hdr4me.NewProtocol(mech, *eps, *d, *m)
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}
	ds := hdr4me.Memoize(hdr4me.NewGaussianDataset(*users, *d, *seed))
	var wg sync.WaitGroup
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := hdr4me.DialCollector(bound.String())
			if err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			defer cl.Close()
			client := hdr4me.NewClient(p, hdr4me.NewRNG(*seed^0xc11e).Child(uint64(c)))
			row := make([]float64, *d)
			for i := c; i < *users; i += *conns {
				if ctx.Err() != nil {
					return
				}
				ds.Row(i, row)
				if err := cl.Send(client.Report(row)); err != nil {
					log.Printf("client %d: send: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if ctx.Err() != nil {
		fmt.Println("ldpcollect: cancelled")
		return
	}

	cl, err := hdr4me.DialCollector(bound.String())
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}
	defer cl.Close()
	est, err := cl.Estimate()
	if err != nil {
		log.Fatalf("ldpcollect: estimate: %v", err)
	}
	counts, err := cl.Counts()
	if err != nil {
		log.Fatalf("ldpcollect: counts: %v", err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	fmt.Printf("collected %d (dimension, value) pairs from %d users\n", total, *users)

	truth := ds.TrueMean()
	fmt.Printf("naive aggregation MSE:    %.6g\n", hdr4me.MSE(est, truth))

	// The enhanced estimate arrives over the wire too (0x04 frame): the
	// collector derives deviations from the framework with an
	// uninformative prior — no access to the raw data.
	enhanced, err := cl.Enhanced()
	if err != nil {
		log.Fatalf("ldpcollect: enhanced: %v", err)
	}
	fmt.Printf("HDR4ME L1-enhanced MSE:   %.6g (served as wire frame 0x04)\n", hdr4me.MSE(enhanced, truth))
}
