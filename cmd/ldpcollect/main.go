// Command ldpcollect demonstrates the full networked collection pipeline: a
// TCP collector server wrapping a Session estimator, a fleet of concurrent
// clients perturbing a synthetic dataset, and the collector-side naive +
// HDR4ME-enhanced estimates — the enhanced one served over the wire as its
// own frame type. Ctrl-C cancels the collection cleanly.
//
//	ldpcollect -users 20000 -d 100 -m 100 -eps 0.8 -mech piecewise
//
// Reports ride the BATCH wire frame (-batch controls the size; 1 falls
// back to per-report frames). With -merge-into the collector additionally
// acts as a shard leaf: after its round it ships one snapshot to the
// parent collector at that address over the MERGE frame, so several
// ldpcollect processes fold into a tree.
//
//	ldpcollect -addr 127.0.0.1:9000 -users 0            # parent: serve only
//	ldpcollect -merge-into 127.0.0.1:9000 -users 20000  # leaf shard
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	hdr4me "github.com/hdr4me/hdr4me"
)

func main() {
	users := flag.Int("users", 20_000, "number of simulated users")
	d := flag.Int("d", 100, "dimensions")
	m := flag.Int("m", 0, "reported dimensions per user (default: d)")
	eps := flag.Float64("eps", 0.8, "collective privacy budget")
	mechName := flag.String("mech", "piecewise",
		"mechanism: "+strings.Join(hdr4me.MechanismNames(), "|"))
	conns := flag.Int("conns", 8, "concurrent client connections")
	batch := flag.Int("batch", 256, "reports per BATCH frame (1 = unbatched per-report sends)")
	addr := flag.String("addr", "127.0.0.1:0", "collector listen address")
	mergeInto := flag.String("merge-into", "", "parent collector address to fold this shard's snapshot into")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *m <= 0 || *m > *d {
		*m = *d
	}
	if *batch < 1 {
		log.Fatalf("ldpcollect: -batch must be >= 1, have %d", *batch)
	}
	mech, err := hdr4me.MechanismByName(*mechName)
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}

	// Collector side: one Session holds the estimator and its HDR4ME
	// configuration; the TCP server serves it — reports in, naive and
	// enhanced estimates out.
	sess, err := hdr4me.New(
		hdr4me.WithMechanism(mech),
		hdr4me.WithBudget(*eps),
		hdr4me.WithDims(*d, *m),
		hdr4me.WithEnhance(hdr4me.DefaultEnhanceConfig(hdr4me.RegL1)),
		hdr4me.WithSeed(*seed),
	)
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}
	srv := hdr4me.NewEstimatorServer(sess.Estimator())
	bound, err := srv.ListenContext(ctx, *addr)
	if err != nil {
		log.Fatalf("ldpcollect: listen: %v", err)
	}
	defer srv.Close()
	fmt.Printf("collector listening on %s (%s, ε=%g, d=%d, m=%d)\n", bound, mech.Name(), *eps, *d, *m)

	// Parent mode: no local users, just serve queries and fold in shard
	// snapshots arriving over MERGE frames until interrupted. A mid-tier
	// collector (-merge-into set too) relays its accumulated state upward
	// on shutdown.
	if *users == 0 {
		fmt.Println("serve-only: accepting reports, queries and shard merges (Ctrl-C to stop)")
		<-ctx.Done()
		var total int64
		for _, c := range sess.Counts() {
			total += c
		}
		fmt.Printf("final state: %d (dimension, value) pairs accumulated\n", total)
		if *mergeInto != "" {
			if err := sess.PushSnapshot(*mergeInto); err != nil {
				log.Fatalf("ldpcollect: merge into %s: %v", *mergeInto, err)
			}
			fmt.Printf("snapshot folded into parent collector at %s (wire frame 0x08)\n", *mergeInto)
		}
		return
	}

	// User side: perturb locally, ship reports over real sockets.
	p, err := hdr4me.NewProtocol(mech, *eps, *d, *m)
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}
	ds := hdr4me.Memoize(hdr4me.NewGaussianDataset(*users, *d, *seed))
	var wg sync.WaitGroup
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// -batch 1 is the true per-report baseline: a plain client
			// whose Send blocks on each ack. Anything larger rides the
			// auto-batching BATCH-frame path.
			var send func(hdr4me.Report) error
			if *batch == 1 {
				cl, err := hdr4me.DialCollector(bound.String())
				if err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
				defer cl.Close()
				send = cl.Send
			} else {
				bc, err := hdr4me.DialCollectorBuffered(bound.String(), hdr4me.WithBatchSize(*batch))
				if err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
				defer func() {
					if err := bc.Close(); err != nil {
						log.Printf("client %d: flush: %v", c, err)
					}
				}()
				send = bc.Add
			}
			client := hdr4me.NewClient(p, hdr4me.NewRNG(*seed^0xc11e).Child(uint64(c)))
			row := make([]float64, *d)
			for i := c; i < *users; i += *conns {
				if ctx.Err() != nil {
					return
				}
				ds.Row(i, row)
				if err := send(client.Report(row)); err != nil {
					log.Printf("client %d: send: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if ctx.Err() != nil {
		fmt.Println("ldpcollect: cancelled")
		return
	}

	cl, err := hdr4me.DialCollector(bound.String())
	if err != nil {
		log.Fatalf("ldpcollect: %v", err)
	}
	defer cl.Close()
	est, err := cl.Estimate()
	if err != nil {
		log.Fatalf("ldpcollect: estimate: %v", err)
	}
	counts, err := cl.Counts()
	if err != nil {
		log.Fatalf("ldpcollect: counts: %v", err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	fmt.Printf("collected %d (dimension, value) pairs from %d users\n", total, *users)

	truth := ds.TrueMean()
	fmt.Printf("naive aggregation MSE:    %.6g\n", hdr4me.MSE(est, truth))

	// The enhanced estimate arrives over the wire too (0x04 frame): the
	// collector derives deviations from the framework with an
	// uninformative prior — no access to the raw data.
	enhanced, err := cl.Enhanced()
	if err != nil {
		log.Fatalf("ldpcollect: enhanced: %v", err)
	}
	fmt.Printf("HDR4ME L1-enhanced MSE:   %.6g (served as wire frame 0x04)\n", hdr4me.MSE(enhanced, truth))

	// Leaf-shard mode: fold everything this collector accumulated into the
	// parent, one snapshot over the wire — no report replay.
	if *mergeInto != "" {
		if err := sess.PushSnapshot(*mergeInto); err != nil {
			log.Fatalf("ldpcollect: merge into %s: %v", *mergeInto, err)
		}
		fmt.Printf("shard snapshot folded into parent collector at %s (wire frame 0x08)\n", *mergeInto)
	}
}
