// Command ldpanalyze benchmarks LDP mechanisms analytically — the paper's
// §IV pitch: compare utilities "without conducting any experiment".
//
//	ldpanalyze -n 100000 -d 750 -m 750 -eps 0.8 -xi 0.05,0.1
//
// For every implemented mechanism it prints the Lemma 2/3 deviation
// Gaussian, the Theorem 2 Berry–Esseen bound, the probability that the
// per-dimension deviation stays within each tolerance ξ, and the
// Theorem 3/4 lower bounds on HDR4ME improving the aggregation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	hdr4me "github.com/hdr4me/hdr4me"
)

func main() {
	n := flag.Int("n", 100_000, "number of users")
	d := flag.Int("d", 750, "number of dimensions")
	m := flag.Int("m", 0, "reported dimensions per user (default: d)")
	eps := flag.Float64("eps", 0.8, "collective privacy budget ε")
	xiFlag := flag.String("xi", "0.01,0.05,0.1,0.5,1", "comma-separated deviation tolerances")
	specFlag := flag.String("spec", "uniform", "data model for bounded mechanisms: uniform|casestudy")
	flag.Parse()

	if *m <= 0 || *m > *d {
		*m = *d
	}
	xis, err := parseFloats(*xiFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldpanalyze: -xi: %v\n", err)
		os.Exit(2)
	}

	var spec hdr4me.DataSpec
	switch *specFlag {
	case "uniform":
		// 21 atoms across [−1, 1]: an uninformative prior.
		spec = hdr4me.UniformGridSpec(21)
	case "casestudy":
		spec = hdr4me.CaseStudySpec()
	default:
		fmt.Fprintf(os.Stderr, "ldpanalyze: unknown spec %q\n", *specFlag)
		os.Exit(2)
	}

	epsPer := *eps / float64(*m)
	r := float64(*n) * float64(*m) / float64(*d)
	fmt.Printf("n=%d  d=%d  m=%d  ε=%g  → ε/m=%.6g, E[r]=%.6g, spec=%s\n\n",
		*n, *d, *m, *eps, epsPer, r, *specFlag)

	for _, name := range hdr4me.MechanismNames() {
		mech, err := hdr4me.MechanismByName(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldpanalyze: %v\n", err)
			os.Exit(2)
		}
		fw := hdr4me.NewFramework(mech, epsPer, r)
		var dev hdr4me.Deviation
		var be float64
		if mech.Bounded() {
			dev = fw.Deviation(&spec)
			be = fw.BerryEsseenBound(&spec)
		} else {
			dev = fw.Deviation(nil)
			be = fw.BerryEsseenBound(nil)
		}
		joint := hdr4me.Homogeneous(*d, dev)
		fmt.Printf("%-12s bounded=%-5v δ=%-12.5g σ²=%-12.5g Berry–Esseen≤%.4g\n",
			mech.Name(), mech.Bounded(), dev.Delta, dev.Sigma2, be)
		for _, xi := range xis {
			fmt.Printf("    P[|dev| ≤ %-6g] per-dim %.6g   all-%d-dims %.6g\n",
				xi, dev.ProbWithin(xi), *d, joint.UniformBox(xi))
		}
		fmt.Printf("    HDR4ME improvement lower bounds: L1 (Thm 3) ≥ %.6g, L2 (Thm 4) ≥ %.6g\n\n",
			joint.Theorem3LowerBound(), joint.Theorem4LowerBound())
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
