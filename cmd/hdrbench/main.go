// Command hdrbench regenerates the paper's tables and figures from the
// command line:
//
//	hdrbench -exp table2
//	hdrbench -exp fig4 -scale quick
//	hdrbench -exp families                # the three Session estimator families
//	hdrbench -exp all -scale paper        # the full evaluation (hours)
//
// Output is the text form of each artifact: Table II rows, Fig. 2/3 pdf
// series, Fig. 4/5 MSE tables, the DESIGN.md ablations, and a comparison
// of the three unified-API estimator families. Ctrl-C cancels the
// families run mid-flight.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	hdr4me "github.com/hdr4me/hdr4me"
	"github.com/hdr4me/hdr4me/internal/dataset"
	"github.com/hdr4me/hdr4me/internal/exps"
	"github.com/hdr4me/hdr4me/internal/ldp"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2|fig2|fig3|fig4|fig5|ablations|families|all")
	scaleName := flag.String("scale", "quick", "experiment scale: quick|paper")
	plot := flag.Bool("plot", false, "render ASCII charts in addition to tables")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var scale exps.Scale
	switch *scaleName {
	case "quick":
		scale = exps.QuickScale()
	case "paper":
		scale = exps.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "hdrbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	run := func(name string, fn func()) {
		if *exp == name || *exp == "all" {
			fn()
		}
	}

	run("table2", func() {
		fmt.Println(exps.RenderTableII(exps.TableII()))
	})

	run("fig2", func() {
		cfg := exps.ScaledFig2Config(scale)
		fmt.Printf("Fig. 2 — analysis vs experiment, Uniform (n=%d, d=%d, m=%d, ε=%g, %d trials)\n\n",
			cfg.Users, cfg.Dims, cfg.M, cfg.Eps, cfg.Trials)
		for _, mech := range ldp.Evaluated() {
			s := exps.Fig2(mech, cfg)
			fmt.Println(exps.RenderCLT(s))
			if *plot {
				fmt.Println(exps.PlotCLT(s))
			}
		}
	})

	run("fig3", func() {
		cfg := exps.ScaledFig3Config(scale)
		fmt.Printf("Fig. 3 — §IV-C case study (r=%g, ε/m=%g, %d trials)\n\n", cfg.R, cfg.EpsPerDim, cfg.Trials)
		for _, s := range []exps.CLTSeries{exps.Fig3Piecewise(cfg), exps.Fig3Square(cfg)} {
			fmt.Println(exps.RenderCLT(s))
			if *plot {
				fmt.Println(exps.PlotCLT(s))
			}
		}
	})

	run("fig4", func() {
		sets := exps.NewPaperDatasets(scale)
		cfg := exps.ScaledSweepConfig(scale)
		for _, c := range []struct {
			title string
			ds    *dataset.Memoized
			mech  ldp.Mechanism
			eps   []float64
		}{
			{"Gaussian (d=100) / Laplace", sets.Gaussian, ldp.Laplace{}, exps.LaplacePMEps},
			{"Gaussian (d=100) / Piecewise", sets.Gaussian, ldp.Piecewise{}, exps.LaplacePMEps},
			{"Gaussian (d=100) / Square", sets.Gaussian, ldp.SquareWave{}, exps.SquareEps},
			{"Poisson (d=300) / Laplace", sets.Poisson, ldp.Laplace{}, exps.LaplacePMEps},
			{"Poisson (d=300) / Piecewise", sets.Poisson, ldp.Piecewise{}, exps.LaplacePMEps},
			{"Poisson (d=300) / Square", sets.Poisson, ldp.SquareWave{}, exps.SquareEps},
			{"Uniform (d=500) / Laplace", sets.Uniform, ldp.Laplace{}, exps.LaplacePMEps},
			{"Uniform (d=500) / Piecewise", sets.Uniform, ldp.Piecewise{}, exps.LaplacePMEps},
			{"Uniform (d=500) / Square", sets.Uniform, ldp.SquareWave{}, exps.SquareEps},
			{"COV-19 (d=750) / Laplace", sets.COV19, ldp.Laplace{}, exps.LaplacePMEps},
			{"COV-19 (d=750) / Piecewise", sets.COV19, ldp.Piecewise{}, exps.LaplacePMEps},
			{"COV-19 (d=750) / Square", sets.COV19, ldp.SquareWave{}, exps.SquareEps},
		} {
			pts := exps.MSEvsEps(c.ds, c.mech, c.eps, cfg)
			fmt.Println(exps.RenderMSE("Fig. 4 — "+c.title, false, pts))
			if *plot {
				fmt.Println(exps.PlotMSE("Fig. 4 — "+c.title, false, pts))
			}
		}
	})

	run("fig5", func() {
		base := exps.NewPaperDatasets(scale).COV19
		cfg := exps.ScaledSweepConfig(scale)
		dims := []int{50, 100, 200, 400, 800, 1600}
		for _, mech := range []ldp.Mechanism{ldp.Laplace{}, ldp.Piecewise{}} {
			pts := exps.MSEvsDims(base, dims, mech, 0.8, cfg)
			fmt.Println(exps.RenderMSE("Fig. 5 — COV-19, ε=0.8, "+mech.Name(), true, pts))
			if *plot {
				fmt.Println(exps.PlotMSE("Fig. 5 — COV-19, ε=0.8, "+mech.Name(), true, pts))
			}
		}
	})

	run("ablations", func() {
		ds := exps.NewPaperDatasets(scale).Gaussian
		cfg := exps.ScaledSweepConfig(scale)
		fmt.Println(exps.RenderAblation("Ablation — λ* confidence (Laplace, Gaussian, ε=0.4)",
			exps.AblationLambdaConfidence(ds, ldp.Laplace{}, 0.4, []float64{0.9, 0.99, 0.999, 0.9999}, cfg)))
		fmt.Println(exps.RenderAblation("Ablation — guarded vs always-on (SquareWave, Gaussian, ε=100)",
			exps.AblationGuarded(ds, ldp.SquareWave{}, 100, cfg)))
		fmt.Println(exps.RenderAblation("Ablation — L2 weight floor (Laplace, Gaussian, ε=0.4)",
			exps.AblationL2Floor(ds, ldp.Laplace{}, 0.4, []float64{0.01, 0.05, 0.2}, cfg)))
		fmt.Println(exps.RenderAblation("Ablation — reported dims m (Piecewise, Gaussian, ε=0.8)",
			exps.AblationSamplingM(ds, ldp.Piecewise{}, 0.8, []int{1, 10, 25, 50, 100}, cfg)))
	})

	run("families", func() {
		if err := runFamilies(ctx, scale); err != nil {
			fmt.Fprintf(os.Stderr, "hdrbench: families: %v\n", err)
			os.Exit(1)
		}
	})

	switch *exp {
	case "table2", "fig2", "fig3", "fig4", "fig5", "ablations", "families", "all":
	default:
		fmt.Fprintf(os.Stderr, "hdrbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// runFamilies compares the three estimator families of the unified
// Session API at equal total budget: the §III-B sampling protocol, Duchi
// et al.'s whole-tuple mechanism, and the §V-C frequency reducer.
func runFamilies(ctx context.Context, scale exps.Scale) error {
	users := 100_000 / max(scale.UsersDiv, 1)
	const d, eps = 16, 1.0
	ds := hdr4me.Memoize(hdr4me.NewGaussianDataset(users, d, 2024))
	truth := ds.TrueMean()

	fmt.Printf("Estimator families — n=%d, d=%d, ε=%g (unified Session API)\n\n", users, d, eps)
	fmt.Printf("%-24s %14s %14s\n", "family", "naive MSE", "enhanced MSE")

	sampling, err := hdr4me.New(
		hdr4me.WithMechanism(hdr4me.Duchi()),
		hdr4me.WithBudget(eps),
		hdr4me.WithDims(d, 1),
		hdr4me.WithEnhance(hdr4me.DefaultEnhanceConfig(hdr4me.RegL1)),
	)
	if err != nil {
		return err
	}
	res, err := sampling.Run(ctx, ds)
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %14.6g %14.6g\n", "sampling (m=1, duchi)",
		hdr4me.MSE(res.Naive, truth), hdr4me.MSE(res.Enhanced, truth))

	whole, err := hdr4me.New(hdr4me.WithWholeTuple(), hdr4me.WithBudget(eps), hdr4me.WithDims(d, 0))
	if err != nil {
		return err
	}
	if res, err = whole.Run(ctx, ds); err != nil {
		return err
	}
	fmt.Printf("%-24s %14.6g %14s\n", "whole-tuple (duchi-md)", hdr4me.MSE(res.Naive, truth), "—")

	cards := make([]int, 8)
	for j := range cards {
		cards[j] = 4
	}
	cds := hdr4me.NewZipfCatDataset(users, cards, 1.2, 2025)
	// Guarded: at this budget the Lemma 4 threshold may not be met, and
	// the Theorem 3 pre-flight check then keeps the naive estimate.
	guarded := hdr4me.DefaultEnhanceConfig(hdr4me.RegL1)
	guarded.Guarded = true
	freqSess, err := hdr4me.New(
		hdr4me.WithMechanism(hdr4me.Laplace()),
		hdr4me.WithBudget(eps),
		hdr4me.WithCards(cards),
		hdr4me.WithDims(len(cards), 2),
		hdr4me.WithEnhance(guarded),
	)
	if err != nil {
		return err
	}
	if res, err = freqSess.Run(ctx, cds); err != nil {
		return err
	}
	ftruth := hdr4me.TrueFreqs(cds)
	flatTruth := make([]float64, 0, len(res.Naive))
	for _, row := range ftruth {
		flatTruth = append(flatTruth, row...)
	}
	fmt.Printf("%-24s %14.6g %14.6g\n\n", "frequency (8×4 cats)",
		hdr4me.MSE(res.Naive, flatTruth), hdr4me.MSE(res.Enhanced, flatTruth))
	return nil
}
