// Command hdrvet is the collector's invariant checker: a multichecker
// bundling the custom analyzers from internal/analyzers — including
// the dataflow-based ldpflow, nilness, and lockorder — plus
// reimplementations of the stock atomic and copylock passes.
//
// It runs in two modes:
//
//	hdrvet [flags] ./...        # standalone: go list + analyze (make vet-fast)
//	go vet -vettool=$(pwd)/bin/hdrvet [flags] ./...   # unitchecker (make lint, CI)
//
// With no analyzer flags every analyzer runs; naming analyzers
// (-framedrain -wireframe) runs just those, and -fast is shorthand for
// the quick pre-commit pair framedrain+wireframe. Intentional
// exceptions are suppressed in source with
//
//	//hdrvet:ignore <analyzer> -- <reason>
//
// on the flagged line or the line above it; the reason is mandatory.
//
// hdrvet -suppressions [packages] audits every ignore directive in the
// tree: each is listed with its position and reason, and directives
// that no longer silence any finding (stale) or lack names/reason
// (malformed) are flagged and make the exit non-zero, so dead
// exceptions cannot linger.
//
// Under GitHub Actions (GITHUB_ACTIONS=true) every finding is also
// emitted as a ::error workflow command, which the runner renders as a
// PR annotation on the flagged line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hdr4me/hdr4me/internal/analyzers/analysis"
	"github.com/hdr4me/hdr4me/internal/analyzers/driver"
	"github.com/hdr4me/hdr4me/internal/analyzers/framedrain"
	"github.com/hdr4me/hdr4me/internal/analyzers/kahansum"
	"github.com/hdr4me/hdr4me/internal/analyzers/ldpflow"
	"github.com/hdr4me/hdr4me/internal/analyzers/lockhold"
	"github.com/hdr4me/hdr4me/internal/analyzers/lockorder"
	"github.com/hdr4me/hdr4me/internal/analyzers/nilness"
	"github.com/hdr4me/hdr4me/internal/analyzers/rangemap"
	"github.com/hdr4me/hdr4me/internal/analyzers/stock"
	"github.com/hdr4me/hdr4me/internal/analyzers/wireframe"
)

// version is the string `go vet` hashes into its action cache key
// (the -V=full handshake); bump it when analyzer behavior changes so
// cached clean results are invalidated.
const version = "v1.1.0"

var all = []*analysis.Analyzer{
	framedrain.Analyzer,
	kahansum.Analyzer,
	ldpflow.Analyzer,
	lockhold.Analyzer,
	lockorder.Analyzer,
	nilness.Analyzer,
	rangemap.Analyzer,
	wireframe.Analyzer,
	stock.Atomic,
	stock.Copylock,
}

func main() {
	// `go vet` probes the tool before use: `hdrvet -V=full` must print
	// a "name version semver" line, and `hdrvet -flags` the JSON list
	// of flags it may be handed.
	versionFlag := flag.String("V", "", "print version (the go vet tool-ID handshake)")
	flagsFlag := flag.Bool("flags", false, "print the tool's analyzer flags as JSON and exit")
	fast := flag.Bool("fast", false, "run only framedrain and wireframe (the quick pre-commit set)")
	suppressions := flag.Bool("suppressions", false, "audit //hdrvet:ignore directives: list all, flag stale and malformed ones")
	selected := make(map[string]*bool, len(all))
	for _, a := range all {
		selected[a.Name] = flag.Bool(a.Name, false, "run only named analyzers: "+firstLine(a.Doc))
	}
	flag.Usage = usage
	flag.Parse()

	if *versionFlag != "" {
		fmt.Printf("hdrvet version %s\n", version)
		return
	}
	if *flagsFlag {
		printFlags()
		return
	}

	analyzers := pick(selected, *fast)
	args := flag.Args()

	if len(args) == 1 && driver.IsVetConfig(args[0]) {
		findings, err := driver.RunUnit(args[0], analyzers)
		exitOn(err, findings)
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	units, err := driver.Load(args)
	if err != nil {
		exitOn(err, 0)
	}
	if *suppressions {
		flagged, err := auditSuppressions(units)
		exitOn(err, flagged)
	}
	findings := 0
	for _, u := range units {
		diags, fset, err := driver.Run(u, analyzers)
		if err != nil {
			exitOn(err, 0)
		}
		driver.EmitDiagnostics(os.Stdout, os.Stderr, fset, diags)
		findings += len(diags)
	}
	exitOn(nil, findings)
}

// auditSuppressions lists every //hdrvet:ignore directive in the
// loaded units with its position and reason, marking the ones that are
// malformed or stale (silencing no current finding — the invariant
// they excepted holds again, so the directive should go). It returns
// how many were flagged; a clean audit returns 0.
func auditSuppressions(units []*driver.Unit) (int, error) {
	flagged, total := 0, 0
	for _, u := range units {
		ds := analysis.Directives(u.Fset, u.Files)
		if len(ds) == 0 {
			continue
		}
		// Raw findings: what the directives would be suppressing.
		raw, fset, err := driver.RunRaw(u, all)
		if err != nil {
			return 0, err
		}
		for _, d := range ds {
			total++
			live := false
			for _, diag := range raw {
				if d.Suppresses(fset, diag) {
					live = true
					break
				}
			}
			status := ""
			switch {
			case d.Malformed():
				status = "  [MALFORMED: want \"" + analysis.IgnorePrefix + " <analyzer> -- <reason>\"]"
				flagged++
			case !live:
				status = "  [STALE: suppresses nothing]"
				flagged++
			}
			fmt.Printf("%s: %s -- %s%s\n",
				fset.Position(d.Pos), strings.Join(d.Names, " "), d.Reason, status)
		}
	}
	fmt.Printf("%d suppression(s), %d flagged\n", total, flagged)
	return flagged, nil
}

// pick returns the analyzers to run: the named ones, the -fast pair, or
// everything.
func pick(selected map[string]*bool, fast bool) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range all {
		if *selected[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) > 0 {
		return out
	}
	if fast {
		return []*analysis.Analyzer{framedrain.Analyzer, wireframe.Analyzer}
	}
	return all
}

func exitOn(err error, findings int) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdrvet:", err)
		os.Exit(1)
	}
	if findings > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// printFlags answers `go vet`'s -flags probe: the set of boolean flags
// the driver may pass back to the tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{{Name: "fast", Bool: true, Usage: "run only framedrain and wireframe"}}
	for _, a := range all {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		exitOn(err, 0)
	}
	fmt.Println(string(data))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func usage() {
	fmt.Fprintf(os.Stderr, `hdrvet checks hdr4me's wire, locking, and float-determinism invariants.

usage:
  hdrvet [analyzer flags] [packages]     analyze packages (default ./...)
  go vet -vettool=/path/to/hdrvet [analyzer flags] [packages]

analyzers:
`)
	for _, a := range all {
		fmt.Fprintf(os.Stderr, "  -%-12s %s\n", a.Name, firstLine(a.Doc))
	}
	fmt.Fprintf(os.Stderr, "  -%-12s %s\n", "fast", "framedrain + wireframe only (pre-commit quick set)")
	fmt.Fprintf(os.Stderr, "  -%-12s %s\n", "suppressions", "audit ignore directives: list all, flag stale/malformed")
	fmt.Fprintf(os.Stderr, "\nsuppress an intentional exception with:\n  %s <analyzer> -- <reason>\n", analysis.IgnorePrefix)
}
