package hdr4me

import (
	"fmt"
	"sort"
	"time"

	"github.com/hdr4me/hdr4me/internal/analysis"
	"github.com/hdr4me/hdr4me/internal/dataset"
	"github.com/hdr4me/hdr4me/internal/dist"
	"github.com/hdr4me/hdr4me/internal/freq"
	"github.com/hdr4me/hdr4me/internal/highdim"
	"github.com/hdr4me/hdr4me/internal/ldp"
	"github.com/hdr4me/hdr4me/internal/mathx"
	"github.com/hdr4me/hdr4me/internal/metrics"
	"github.com/hdr4me/hdr4me/internal/recal"
	"github.com/hdr4me/hdr4me/internal/transport"
)

// Mechanism is a one-dimensional ε-LDP perturbation on [−1, 1]; see the
// methods' documentation in the internal ldp package.
type Mechanism = ldp.Mechanism

// Mechanism constructors for the seven implemented mechanisms.
func Laplace() Mechanism    { return ldp.Laplace{} }
func Piecewise() Mechanism  { return ldp.Piecewise{} }
func SquareWave() Mechanism { return ldp.SquareWave{} }
func Duchi() Mechanism      { return ldp.Duchi{} }
func Hybrid() Mechanism     { return ldp.Hybrid{} }
func Staircase() Mechanism  { return ldp.Staircase{} }
func SCDF() Mechanism       { return ldp.SCDF{} }

// MechanismByName resolves "laplace", "piecewise", "squarewave", "duchi",
// "hybrid", "staircase" or "scdf".
func MechanismByName(name string) (Mechanism, error) { return ldp.ByName(name) }

// MechanismNames returns the canonical names of every implemented
// mechanism, sorted — the strings MechanismByName resolves.
func MechanismNames() []string {
	reg := ldp.Registry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EvaluatedMechanisms returns the three mechanisms of the paper's
// evaluation: Laplace, Piecewise, Square Wave.
func EvaluatedMechanisms() []Mechanism { return ldp.Evaluated() }

// RNG is the deterministic splittable random source used everywhere.
type RNG = mathx.RNG

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed uint64) *RNG { return mathx.NewRNG(seed) }

// Dataset is a fixed population of d-dimensional tuples in [−1, 1]; see the
// internal dataset package.
type Dataset = dataset.Dataset

// Memoized wraps a Dataset with a cached exact mean.
type Memoized = dataset.Memoized

// Dataset constructors (paper §VI workloads).
func NewUniformDataset(n, d int, seed uint64) Dataset   { return dataset.NewUniform(n, d, seed) }
func NewGaussianDataset(n, d int, seed uint64) Dataset  { return dataset.NewGaussian(n, d, seed) }
func NewPoissonDataset(n, d int, seed uint64) Dataset   { return dataset.NewPoisson(n, d, seed) }
func NewCOV19LikeDataset(n, d int, seed uint64) Dataset { return dataset.NewCOV19Like(n, d, seed) }

// Memoize caches a dataset's exact mean across uses.
func Memoize(ds Dataset) *Memoized { return dataset.Memoize(ds) }

// TrueMean streams ds once and returns its exact per-dimension mean.
func TrueMean(ds Dataset) []float64 { return dataset.TrueMean(ds, 0) }

// Protocol, Client, Aggregator and Report form the high-dimensional
// collection protocol (§III-B): m of d dimensions per user at ε/m each.
type (
	Protocol   = highdim.Protocol
	Client     = highdim.Client
	Aggregator = highdim.Aggregator
	Report     = highdim.Report
)

// NewProtocol validates and returns a protocol configuration.
func NewProtocol(mech Mechanism, eps float64, d, m int) (Protocol, error) {
	return highdim.NewProtocol(mech, eps, d, m)
}

// NewClient returns a user-side perturber.
func NewClient(p Protocol, rng *RNG) *Client { return highdim.NewClient(p, rng) }

// NewAggregator returns an empty collector for p.
func NewAggregator(p Protocol) *Aggregator { return highdim.NewAggregator(p) }

// Simulate runs one full collection round over ds with the given worker
// parallelism (0 = default).
//
// Deprecated: build a Session with New(WithMechanism(...), WithBudget(...),
// WithDims(...)) and call Session.Run — it adds context cancellation,
// streaming ingestion and shard composition behind the same math.
func Simulate(p Protocol, ds Dataset, rng *RNG, workers int) (*Aggregator, error) {
	return highdim.Simulate(p, ds, rng, workers)
}

// Allocation assigns per-dimension budgets (the §II-B importance-aware
// extension); see internal/highdim for the privacy constraint.
type Allocation = highdim.Allocation

// UniformAllocation is the paper's ε/m split.
func UniformAllocation(eps float64, d, m int) Allocation {
	return highdim.UniformAllocation(eps, d, m)
}

// OptimalMSEAllocation distributes budget as εⱼ ∝ wⱼ^{1/3}, the
// weighted-MSE optimum.
func OptimalMSEAllocation(eps float64, weights []float64, m int) (Allocation, error) {
	return highdim.OptimalMSEAllocation(eps, weights, m)
}

// SimulateAllocated runs a collection round under a per-dimension budget
// allocation.
//
// Deprecated: build a Session with New(..., WithAllocation(alloc)) and
// call Session.Run.
func SimulateAllocated(p Protocol, alloc Allocation, ds Dataset, rng *RNG, workers int) (*Aggregator, error) {
	return highdim.SimulateAllocated(p, alloc, ds, rng, workers)
}

// WeightedMSE is the importance-weighted error metric the allocators target.
func WeightedMSE(est, truth, weights []float64) float64 {
	return metrics.WeightedMSE(est, truth, weights)
}

// Framework evaluates the paper's §IV analytical framework; Deviation is
// the per-dimension Gaussian of θ̂ⱼ − θ̄ⱼ, JointDeviation the Theorem 1
// product law, DataSpec the Lemma 3 data model.
type (
	Framework      = analysis.Framework
	Deviation      = analysis.Deviation
	JointDeviation = analysis.JointDeviation
	DataSpec       = analysis.DataSpec
	TableIIRow     = analysis.TableIIRow
)

// NewFramework returns the framework for one mechanism at per-dimension
// budget ε/m and expected per-dimension report count r.
func NewFramework(mech Mechanism, epsPerDim, r float64) Framework {
	return Framework{Mech: mech, EpsPerDim: epsPerDim, R: r}
}

// Homogeneous builds the Theorem 1 joint law with d identical coordinates.
func Homogeneous(d int, dev Deviation) JointDeviation { return analysis.Homogeneous(d, dev) }

// SpecFromSamples discretizes continuous samples into a k-atom DataSpec.
func SpecFromSamples(samples []float64, k int) DataSpec {
	return analysis.SpecFromSamples(samples, k)
}

// SpecFromCounts builds a DataSpec from discrete observations.
func SpecFromCounts(col []float64) DataSpec { return analysis.SpecFromCounts(col) }

// UniformSpec builds a DataSpec putting equal mass on each value — the
// uninformative prior collectors use when no pilot data exists.
func UniformSpec(values ...float64) DataSpec { return analysis.UniformSpec(values...) }

// UniformGridSpec is the canonical uninformative prior: k atoms evenly
// spaced across [−1, 1] with equal mass (k ≥ 2; anything less cannot span
// the domain and panics). The collector-side enhancement paths use the
// 21-atom instance.
func UniformGridSpec(k int) DataSpec {
	if k < 2 {
		panic(fmt.Sprintf("hdr4me: UniformGridSpec needs k ≥ 2, have %d", k))
	}
	vals := make([]float64, k)
	for i := range vals {
		vals[i] = -1 + 2*float64(i)/float64(k-1)
	}
	return analysis.UniformSpec(vals...)
}

// CaseStudySpec returns the §IV-C case-study data model.
func CaseStudySpec() DataSpec { return analysis.CaseStudySpec() }

// BerryEsseen returns the Theorem 2 approximation-error bound.
func BerryEsseen(rho, s, r float64) float64 { return analysis.BerryEsseen(rho, s, r) }

// CaseStudyTableII evaluates the §IV-C benchmark (Table II) analytically.
func CaseStudyTableII() []TableIIRow { return analysis.NewCaseStudy().TableII() }

// Reg selects HDR4ME's regularizer; EnhanceConfig parameterizes it.
type (
	Reg           = recal.Reg
	EnhanceConfig = recal.Config
)

// Regularizer flavors.
const (
	RegNone = recal.RegNone
	RegL1   = recal.RegL1
	RegL2   = recal.RegL2
)

// DefaultEnhanceConfig returns the paper configuration for reg.
func DefaultEnhanceConfig(reg Reg) EnhanceConfig { return recal.DefaultConfig(reg) }

// Enhance applies HDR4ME to a naive estimate given per-dimension framework
// deviations (len 1 = shared across dimensions).
func Enhance(est []float64, devs []Deviation, cfg EnhanceConfig) []float64 {
	return recal.Enhance(est, devs, cfg)
}

// ShouldEnhance is the pre-flight check: true when the Theorem 3/4 lower
// bound on HDR4ME improving the aggregation reaches minProb.
func ShouldEnhance(joint JointDeviation, reg Reg, minProb float64) bool {
	return recal.ShouldEnhance(joint, reg, minProb)
}

// EnhanceWithFramework is the one-call collector pipeline: it derives the
// Lemma 2/3 deviations for protocol p — sampling up to 1,000 users of ds to
// build the per-dimension data specs when the mechanism is bounded — and
// re-calibrates est with cfg.
func EnhanceWithFramework(p Protocol, ds Dataset, est []float64, cfg EnhanceConfig) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	fw := NewFramework(p.Mech, p.EpsPerDim(), p.ExpectedReports(ds.NumUsers()))
	var devs []Deviation
	if !p.Mech.Bounded() {
		devs = []Deviation{fw.Deviation(nil)}
	} else {
		users := ds.NumUsers()
		if users > 1000 {
			users = 1000
		}
		d := ds.Dim()
		cols := make([][]float64, d)
		for j := range cols {
			cols[j] = make([]float64, users)
		}
		row := make([]float64, d)
		for i := 0; i < users; i++ {
			ds.Row(i, row)
			for j, v := range row {
				cols[j][i] = v
			}
		}
		devs = make([]Deviation, d)
		for j := range devs {
			spec := analysis.SpecFromSamples(cols[j], 10)
			devs[j] = fw.Deviation(&spec)
		}
	}
	return recal.Enhance(est, devs, cfg), nil
}

// MSE is the paper's Eq. 3 utility metric; L2Deviation its Eq. 2 form.
func MSE(est, truth []float64) float64         { return metrics.MSE(est, truth) }
func L2Deviation(est, truth []float64) float64 { return metrics.L2Deviation(est, truth) }

// Frequency estimation (§V-C): categorical dimensions are histogram-encoded
// and reduced to mean estimation, so the framework and HDR4ME apply.
type (
	CatDataset     = freq.CatDataset
	FreqProtocol   = freq.Protocol
	FreqAggregator = freq.Aggregator
)

// NewZipfCatDataset returns a synthetic categorical dataset with Zipf-like
// category popularity (exponent s).
func NewZipfCatDataset(n int, cards []int, s float64, seed uint64) CatDataset {
	return freq.NewZipfCat(n, cards, s, seed)
}

// NewUniformCatDataset returns a flat categorical dataset.
func NewUniformCatDataset(n int, cards []int, seed uint64) CatDataset {
	return freq.NewUniformCat(n, cards, seed)
}

// TrueFreqs streams ds and returns the exact per-dimension frequencies.
func TrueFreqs(ds CatDataset) [][]float64 { return freq.TrueFreqs(ds) }

// SimulateFreq runs one frequency-collection round.
//
// Deprecated: build a Session with New(..., WithCards(cards)) and call
// Session.Run with the CatDataset.
func SimulateFreq(p FreqProtocol, ds CatDataset, rng *RNG, workers int) (*FreqAggregator, error) {
	return freq.Simulate(p, ds, rng, workers)
}

// ProjectSimplex clips and renormalizes frequency estimates per dimension.
func ProjectSimplex(freqs [][]float64) [][]float64 { return freq.ProjectSimplex(freqs) }

// EMS is Li et al.'s Expectation–Maximization-with-Smoothing estimator for
// reconstructing a full input distribution from Square Wave reports.
type EMS = dist.EMS

// EMSResult is the reconstruction outcome.
type EMSResult = dist.Result

// NewEMS returns an EMS estimator with the reference defaults.
func NewEMS(eps float64) *EMS { return dist.NewEMS(eps) }

// DuchiMD is Duchi et al.'s whole-tuple multidimensional mechanism.
type DuchiMD = highdim.DuchiMD

// NewDuchiMD validates and returns the multidimensional mechanism.
func NewDuchiMD(d int, eps float64) (DuchiMD, error) { return highdim.NewDuchiMD(d, eps) }

// SimulateDuchiMD runs a whole-tuple collection round.
//
// Deprecated: build a Session with New(WithWholeTuple(), WithBudget(eps),
// WithDims(d, d)) and call Session.Run.
func SimulateDuchiMD(m DuchiMD, ds Dataset, rng *RNG, workers int) ([]float64, error) {
	return highdim.SimulateDuchiMD(m, ds, rng, workers)
}

// CollectorServer is a TCP collector; CollectorClient its network client;
// BufferedCollectorClient the auto-batching submitter that rides the BATCH
// wire frame (one syscall + ack round-trip per batch instead of per
// report).
type (
	CollectorServer         = transport.Server
	CollectorClient         = transport.Client
	BufferedCollectorClient = transport.BufferedClient
)

// Buffered-collector options (batch size, flush interval).
type BufferOption = transport.BufferOption

// WithBatchSize sets how many reports a BufferedCollectorClient
// accumulates before shipping one BATCH frame (default 256).
func WithBatchSize(n int) BufferOption { return transport.WithBatchSize(n) }

// WithFlushInterval bounds how long a report may sit buffered before the
// batch ships even if short.
func WithFlushInterval(d time.Duration) BufferOption { return transport.WithFlushInterval(d) }

// WithQueryName routes a BufferedCollectorClient's batches to the named
// query of a multi-query collector (default: the collector's default
// query).
func WithQueryName(name string) BufferOption { return transport.WithQueryName(name) }

// WithReconnect turns on a BufferedCollectorClient's automatic
// reconnection with exactly-once batch replay: the client opens a replay
// session (HELLO frame), numbers every batch, and after a transport
// failure redials, resumes the session, and re-ships exactly the batches
// the collector has not applied. redial may be nil when the client comes
// from DialCollectorBuffered, which then redials the original address.
func WithReconnect(redial func() (*CollectorClient, error)) BufferOption {
	return transport.WithReconnect(redial)
}

// WithReconnectLimit caps consecutive failed recovery attempts (redials,
// shed-retry rounds) before a BufferedCollectorClient gives up (default 8).
func WithReconnectLimit(n int) BufferOption { return transport.WithReconnectLimit(n) }

// Wire protocol versions a collector client can pin with
// WithProtocolVersion.
const (
	ProtocolV1 = transport.ProtocolV1 // legacy row-oriented BATCH frames
	ProtocolV2 = transport.ProtocolV2 // columnar CBATCH frames, negotiated on HELLO
)

// WithProtocolVersion pins a BufferedCollectorClient's wire protocol:
// ProtocolV1 forces the legacy row-oriented grammar (no negotiation),
// ProtocolV2 requires the columnar CBATCH grammar and fails against a
// collector that cannot negotiate it. By default the protocol is
// negotiated whenever the client performs a HELLO (so WithReconnect
// pipelines upgrade to v2 automatically) and stays v1 otherwise.
func WithProtocolVersion(v int) BufferOption {
	return transport.WithClientOptions(transport.WithProtocolVersion(v))
}

// CollectorStats is a CollectorServer's failure-and-recovery counter
// snapshot (shed connections, tripped deadlines, shed and deduplicated
// batches, replay sessions), from CollectorServer.Stats.
type CollectorStats = transport.ServerStats

// ErrCollectorOverloaded is returned by collector clients when the
// collector sheds their connection or batch under overload; the request
// was not processed and may be retried after a backoff.
var ErrCollectorOverloaded = transport.ErrOverloaded

// NewCollectorServer wraps a mean-family aggregator in a TCP collector.
// NewEstimatorServer is the generalization serving any Estimator family
// (and the ENHANCED frame where supported).
func NewCollectorServer(agg *Aggregator) *CollectorServer { return transport.NewServer(agg) }

// CollectorClientOption configures a plain CollectorClient at dial time.
type CollectorClientOption = transport.ClientOption

// WithClientProtocolVersion is WithProtocolVersion for plain
// CollectorClients (DialCollector, DialCollectorContext): ProtocolV1
// forces the legacy grammar, ProtocolV2 requires CBATCH and negotiates
// it before the first batch, and by default the client stays v1 until a
// HELLO negotiates otherwise.
func WithClientProtocolVersion(v int) CollectorClientOption {
	return transport.WithProtocolVersion(v)
}

// DialCollector connects to a collector at addr.
func DialCollector(addr string, opts ...CollectorClientOption) (*CollectorClient, error) {
	return transport.Dial(addr, opts...)
}

// DialCollectorBuffered connects to a collector at addr with an
// auto-batching client — the high-throughput submission path.
func DialCollectorBuffered(addr string, opts ...BufferOption) (*BufferedCollectorClient, error) {
	return transport.DialBuffered(addr, opts...)
}
