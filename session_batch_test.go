package hdr4me

import (
	"sync"
	"testing"
)

// TestSessionAddReportsMatchesSerial: the batched ingest surface must
// agree with per-report ingestion — exact counts, estimates within the
// documented cross-stripe fold tolerance — including under concurrency.
func TestSessionAddReportsMatchesSerial(t *testing.T) {
	mk := func() *Session {
		s, err := New(
			WithMechanism(Piecewise()),
			WithBudget(1),
			WithDims(8, 2),
			WithSeed(3),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	perturber := mk()
	reps := make([]Report, 1200)
	row := make([]float64, 8)
	for i := range reps {
		for j := range row {
			row[j] = float64((i+j)%5)/4 - 0.5
		}
		rep, err := perturber.Report(Tuple{Values: row})
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}

	serial := mk()
	for _, rep := range reps {
		if err := serial.AddReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	batched := mk()
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			const chunk = 75
			for off := w * chunk; off < len(reps); off += workers * chunk {
				end := min(off+chunk, len(reps))
				if acc, err := batched.AddReports(reps[off:end]); err != nil || acc != end-off {
					t.Errorf("worker %d: accepted %d of %d, err %v", w, acc, end-off, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	sc, bc := serial.Counts(), batched.Counts()
	se, be := serial.Estimate(), batched.Estimate()
	for j := range sc {
		if bc[j] != sc[j] {
			t.Fatalf("dim %d: batched count %d != serial %d", j, bc[j], sc[j])
		}
		if d := be[j] - se[j]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("dim %d: batched estimate %v != serial %v", j, be[j], se[j])
		}
	}

	// Malformed reports are skipped, not fatal.
	bad := []Report{reps[0], {Dims: []uint32{99}, Values: []float64{1}}, reps[1]}
	if acc, err := mk().AddReports(bad); acc != 2 || err == nil {
		t.Fatalf("AddReports(bad) = %d, %v; want 2 accepted and the rejection error", acc, err)
	}
}
